"""Planner: binds a parsed SELECT against the catalog and builds a
physical operator tree.

Rule-based optimisations, in the spirit of a compact RDBMS:

- WHERE conjuncts are pushed to the lowest plan node that covers their
  columns (single-table conjuncts reach the scan; cross-relation
  equalities become hash-join keys);
- single-column B+tree indexes are selected for equality and range
  predicates against constants;
- equi-joins use :class:`~repro.exec.operators.HashJoin`, everything else
  nested loops.

The same planner serves snapshot queries and the relational core of
continuous queries: the streaming compiler passes a ``source_resolver``
that maps a windowed stream reference to a swappable
:class:`~repro.exec.operators.RowSource` (the "sequence of relations" of
the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.catalog import catalog as cat
from repro.catalog.schema import Column, Schema
from repro.errors import BindError, PlanningError
from repro.exec import operators as ops
from repro.exec.aggregates import is_aggregate_name, make_aggregate
from repro.exec.expressions import (
    PlannedSubquery,
    RowLayout,
    compile_expr,
    default_name,
    infer_type,
)
from repro.sql import ast
from repro.types.datatypes import DoubleType, IntegerType


@dataclass
class PhysicalPlan:
    """A runnable plan: root operator plus its output description."""

    root: ops.Operator
    layout: RowLayout

    @property
    def column_names(self) -> List[str]:
        return self.layout.names()

    def output_schema(self) -> Schema:
        return Schema([
            Column(name, datatype)
            for (_alias, name, datatype) in self.layout.entries
        ])

    def execute(self, ctx: Optional[dict] = None):
        """Run the plan, yielding result tuples."""
        return self.root.rows(ctx if ctx is not None else {})

    def explain(self, analyze: bool = False) -> str:
        return self.root.explain(analyze=analyze)

    def instrument(self) -> None:
        """Attach per-operator counters to every node (idempotent)."""
        from repro.obs.service import instrument_plan
        instrument_plan(self.root)


class PlanContext:
    """Everything the planner needs besides the AST.

    ``snapshot_fn`` supplies the MVCC snapshot at execution time (for a
    CQ this is the window-consistent view).  ``source_resolver`` maps a
    FROM name to a pre-built ``(Operator, RowLayout)`` — the streaming
    compiler uses it to splice window relations into the plan.
    """

    def __init__(self, catalog, txn_manager, snapshot_fn: Callable,
                 own_txid_fn: Optional[Callable] = None,
                 source_resolver: Optional[Callable] = None):
        self.catalog = catalog
        self.txn_manager = txn_manager
        self.snapshot_fn = snapshot_fn
        self.own_txid_fn = own_txid_fn
        self.source_resolver = source_resolver


class _Conjunct:
    """One ANDed WHERE term, tracked until some plan node consumes it."""

    __slots__ = ("expr", "consumed")

    def __init__(self, expr: ast.Expr):
        self.expr = expr
        self.consumed = False


def split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Flatten a predicate over AND into its conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _column_free(expr: ast.Expr) -> bool:
    """True when the expression references no columns (constant-ish)."""
    return not any(isinstance(node, (ast.ColumnRef, ast.Star))
                   for node in ast.walk_expr(expr))


def _covered(expr: ast.Expr, layout: RowLayout) -> bool:
    """True when every column in ``expr`` resolves in ``layout``."""
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.ColumnRef):
            try:
                layout.resolve(node.table, node.name)
            except BindError:
                return False
        elif isinstance(node, ast.Star):
            return False
    return True


class Planner:
    """Plans one SELECT statement into a :class:`PhysicalPlan`."""

    def __init__(self, ctx: PlanContext):
        self.ctx = ctx

    # -- entry point ----------------------------------------------------------

    def plan_query(self, node) -> PhysicalPlan:
        """Plan a query expression: a SELECT or a set-operation tree."""
        if isinstance(node, ast.SetOp):
            return self._plan_set_op(node)
        return self.plan_select(node)

    def _plan_set_op(self, node: ast.SetOp) -> PhysicalPlan:
        left = self.plan_query(node.left)
        right = self.plan_query(node.right)
        if len(left.layout) != len(right.layout):
            raise PlanningError(
                f"{node.op.upper()} branches have {len(left.layout)} and "
                f"{len(right.layout)} columns"
            )
        if node.op == "union":
            plan = ops.Concat(left.root, right.root)
            if not node.all:
                plan = ops.Distinct(plan)
        elif node.op == "except":
            plan = ops.Except(left.root, right.root, node.all)
        else:
            plan = ops.Intersect(left.root, right.root, node.all)

        layout = left.layout  # names/types come from the left branch
        if node.order_by:
            key_fns, descending = [], []
            for order in node.order_by:
                expr = order.expr
                descending.append(order.descending)
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    position = expr.value - 1
                    if not 0 <= position < len(layout):
                        raise BindError(
                            f"ORDER BY position {expr.value} out of range")
                    key_fns.append(lambda row, ctx, p=position: row[p])
                else:
                    key_fns.append(compile_expr(expr, layout))
            plan = ops.Sort(plan, key_fns, descending)
        if node.limit is not None or node.offset is not None:
            plan = ops.Limit(plan, node.limit, node.offset)
        return PhysicalPlan(plan, layout)

    def plan_select(self, select: ast.Select) -> PhysicalPlan:
        select = self._bind_subqueries_in_select(select)
        conjuncts = [_Conjunct(c) for c in split_conjuncts(select.where)]

        if select.from_clause is None:
            plan, layout = ops.RowSource([()], "dual"), RowLayout([])
        else:
            plan, layout = self._plan_from(select.from_clause, conjuncts)

        # conjuncts nobody consumed become a final filter
        leftovers = [c.expr for c in conjuncts if not c.consumed]
        if leftovers:
            combined = _and_all(leftovers)
            plan = ops.Filter(plan, compile_expr(combined, layout))
            # conversion input for the vectorized executor
            plan.vector_info = (combined, layout)

        return self._plan_projection(select, plan, layout)

    # -- uncorrelated subqueries -------------------------------------------------

    def _bind_subqueries_in_select(self, select: ast.Select) -> ast.Select:
        """Plan IN/EXISTS/scalar subqueries and splice the plans into the
        expression trees (correlated subqueries are not supported; a
        column of the outer query inside one raises BindError there)."""
        has_any = False
        for source in [select.where, select.having] + \
                [i.expr for i in select.items] + \
                [o.expr for o in select.order_by]:
            for node in ast.walk_expr(source):
                if isinstance(node, (ast.InSubquery, ast.Exists,
                                     ast.ScalarSubquery)):
                    has_any = True
        if not has_any:
            return select
        bound = ast.Select(
            items=[ast.SelectItem(self._bind_subqueries(i.expr), i.alias)
                   for i in select.items],
            from_clause=select.from_clause,
            where=self._bind_subqueries(select.where),
            group_by=list(select.group_by),
            having=self._bind_subqueries(select.having),
            order_by=[ast.OrderItem(self._bind_subqueries(o.expr),
                                    o.descending)
                      for o in select.order_by],
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
        )
        return bound

    def _bind_subqueries(self, expr):
        if expr is None:
            return None
        if isinstance(expr, ast.InSubquery):
            subplan = self.plan_query(expr.query)
            if len(subplan.layout) != 1:
                raise PlanningError("IN subquery must return one column")
            return PlannedSubquery(subplan, "in", expr.negated,
                                   operand=self._bind_subqueries(expr.operand))
        if isinstance(expr, ast.Exists):
            subplan = self.plan_query(expr.query)
            return PlannedSubquery(subplan, "exists", expr.negated)
        if isinstance(expr, ast.ScalarSubquery):
            subplan = self.plan_query(expr.query)
            if len(subplan.layout) != 1:
                raise PlanningError("scalar subquery must return one column")
            result_type = subplan.layout.types()[0]
            return PlannedSubquery(subplan, "scalar", result_type=result_type)
        return _rebuild(expr, self._bind_subqueries)

    # -- FROM clause ------------------------------------------------------------

    def _plan_from(self, node, conjuncts) -> Tuple[ops.Operator, RowLayout]:
        if isinstance(node, ast.TableRef):
            return self._plan_table_ref(node, conjuncts)
        if isinstance(node, ast.SubqueryRef):
            sub = self.plan_query(node.query)
            layout = _alias_layout(sub.layout, node.alias)
            plan = sub.root
            plan, layout = self._apply_local_conjuncts(plan, layout, conjuncts)
            return plan, layout
        if isinstance(node, ast.Join):
            return self._plan_join(node, conjuncts)
        raise PlanningError(f"unsupported FROM item {node!r}")

    def _plan_table_ref(self, ref: ast.TableRef,
                        conjuncts) -> Tuple[ops.Operator, RowLayout]:
        alias = ref.alias or ref.name

        if self.ctx.source_resolver is not None:
            resolved = self.ctx.source_resolver(ref)
            if resolved is not None:
                plan, layout = resolved
                layout = _alias_layout(layout, alias)
                return self._apply_local_conjuncts(plan, layout, conjuncts)

        kind = self.ctx.catalog.relation_kind(ref.name)
        if kind is None:
            raise BindError(f"relation {ref.name!r} does not exist")
        if kind == "system view":
            virtual = self.ctx.catalog.get_relation(ref.name)
            layout = RowLayout([
                (alias, column.name, column.datatype)
                for column in virtual.schema
            ])
            plan = ops.RowSource(virtual.rows, ref.name)
            return self._apply_local_conjuncts(plan, layout, conjuncts)
        if kind == cat.VIEW:
            view = self.ctx.catalog.get_relation(ref.name)
            sub = self.plan_query(view.query)
            layout = _alias_layout(sub.layout, alias)
            return self._apply_local_conjuncts(sub.root, layout, conjuncts)
        if kind in (cat.STREAM, cat.DERIVED_STREAM):
            raise PlanningError(
                f"stream {ref.name!r} used without the streaming runtime; "
                "queries over streams are continuous queries"
            )
        table = self.ctx.catalog.get_relation(ref.name, cat.TABLE)
        layout = RowLayout([
            (alias, column.name, column.datatype)
            for column in table.schema
        ])
        plan = self._plan_table_access(table, layout, conjuncts)
        return self._apply_local_conjuncts(plan, layout, conjuncts)

    def _plan_table_access(self, table, layout: RowLayout,
                           conjuncts) -> ops.Operator:
        """Pick an index scan if a conjunct matches, else a SeqScan."""
        chosen = self._choose_index(table, layout, conjuncts)
        if chosen is not None:
            return chosen
        return ops.SeqScan(table, self.ctx.snapshot_fn,
                           self.ctx.txn_manager, self.ctx.own_txid_fn)

    def _choose_index(self, table, layout: RowLayout, conjuncts):
        if not table.indexes():
            return None

        # gather every "col = constant" and "col <op> constant" conjunct
        equalities = {}   # column -> (constant_fn, conjunct)
        for conjunct in conjuncts:
            if conjunct.consumed:
                continue
            match = _match_column_vs_constant(conjunct.expr, layout)
            if match is None:
                continue
            column, op, constant = match
            if op == "=" and column not in equalities:
                equalities[column] = (
                    compile_expr(constant, RowLayout([])), conjunct)

        # composite-equality first: the index whose columns are all
        # pinned by equality conjuncts (widest index wins)
        for index in sorted(table.indexes(),
                            key=lambda i: -len(i.column_names)):
            columns = [c.lower() for c in index.column_names]
            if all(c in equalities for c in columns):
                fns = [equalities[c][0] for c in columns]
                for c in columns:
                    equalities[c][1].consumed = True
                return ops.IndexScan(
                    table, index, self.ctx.snapshot_fn, self.ctx.txn_manager,
                    equal_fn=lambda ctx, fns=fns: tuple(
                        f(None, ctx) for f in fns),
                    own_txid_fn=self.ctx.own_txid_fn,
                )

        by_column = {i.column_names[0].lower(): i
                     for i in table.indexes() if len(i.column_names) == 1}
        if not by_column:
            return None
        # range: collect lower/upper bounds on one indexed column
        for column, index in by_column.items():
            low = high = None
            low_inc = high_inc = True
            used = []
            for conjunct in conjuncts:
                if conjunct.consumed:
                    continue
                match = _match_column_vs_constant(conjunct.expr, layout)
                if match is None or match[0] != column:
                    continue
                _col, op, constant = match
                const_fn = compile_expr(constant, RowLayout([]))
                if op in (">", ">="):
                    low, low_inc = const_fn, op == ">="
                    used.append(conjunct)
                elif op in ("<", "<="):
                    high, high_inc = const_fn, op == "<="
                    used.append(conjunct)
            if low is None and high is None:
                continue
            for conjunct in used:
                conjunct.consumed = True

            def range_fn(ctx, low=low, high=high,
                         low_inc=low_inc, high_inc=high_inc):
                lo = (low(None, ctx),) if low is not None else None
                hi = (high(None, ctx),) if high is not None else None
                return lo, hi, low_inc, high_inc
            return ops.IndexScan(
                table, index, self.ctx.snapshot_fn, self.ctx.txn_manager,
                range_fn=range_fn, own_txid_fn=self.ctx.own_txid_fn,
            )
        return None

    def _apply_local_conjuncts(self, plan, layout: RowLayout, conjuncts):
        """Filter with every unconsumed conjunct this layout covers."""
        applicable = [
            c for c in conjuncts
            if not c.consumed and _covered(c.expr, layout)
        ]
        if applicable:
            for c in applicable:
                c.consumed = True
            combined = _and_all([c.expr for c in applicable])
            plan = ops.Filter(plan, compile_expr(combined, layout))
            plan.vector_info = (combined, layout)
        return plan, layout

    def _plan_join(self, join: ast.Join,
                   conjuncts) -> Tuple[ops.Operator, RowLayout]:
        left_plan, left_layout = self._plan_from(join.left, conjuncts)
        # WHERE conjuncts must not filter the null-supplying side of a
        # LEFT join before the join, so give the right side an empty pool
        right_pool = conjuncts if join.kind != "LEFT" else []
        right_plan, right_layout = self._plan_from(join.right, right_pool)

        combined = left_layout.concat(right_layout)
        join_terms = split_conjuncts(join.condition)
        if join.kind != "LEFT":
            # INNER/CROSS: WHERE conjuncts spanning both sides join here
            for conjunct in conjuncts:
                if conjunct.consumed:
                    continue
                if (_covered(conjunct.expr, combined)
                        and not _covered(conjunct.expr, left_layout)
                        and not _covered(conjunct.expr, right_layout)):
                    join_terms.append(conjunct.expr)
                    conjunct.consumed = True

        left_keys, right_keys, residual = [], [], []
        for term in join_terms:
            keys = _match_equi_key(term, left_layout, right_layout)
            if keys is not None:
                left_expr, right_expr = keys
                left_keys.append(compile_expr(left_expr, left_layout))
                right_keys.append(compile_expr(right_expr, right_layout))
            else:
                residual.append(term)

        kind = "LEFT" if join.kind == "LEFT" else "INNER"
        right_width = len(right_layout)
        residual_fn = (compile_expr(_and_all(residual), combined)
                       if residual else None)
        if left_keys:
            build_left = self._prefer_left_build(join.left, join.right)
            plan = ops.HashJoin(left_plan, right_plan, left_keys, right_keys,
                                kind, right_width, residual_fn, build_left)
        else:
            plan = ops.NestedLoopJoin(left_plan, right_plan, residual_fn,
                                      kind, right_width)
        return plan, combined

    #: assumed size of a window relation when choosing the build side —
    #: windows are usually much smaller than archived tables
    WINDOW_ROW_ESTIMATE = 1_000

    def _prefer_left_build(self, left_node, right_node) -> bool:
        """Hash the smaller input when both sizes can be estimated."""
        left = self._estimate_rows(left_node)
        right = self._estimate_rows(right_node)
        return left is not None and right is not None and left < right

    def _estimate_rows(self, node):
        if not isinstance(node, ast.TableRef):
            return None
        if self.ctx.source_resolver is not None \
                and self.ctx.source_resolver(node) is not None:
            return self.WINDOW_ROW_ESTIMATE
        kind = self.ctx.catalog.relation_kind(node.name)
        if kind == cat.TABLE:
            table = self.ctx.catalog.get_relation(node.name)
            return table.estimated_rows()
        return None

    # -- projection / aggregation ------------------------------------------------

    def _plan_projection(self, select: ast.Select, plan, layout: RowLayout
                         ) -> PhysicalPlan:
        items = _expand_stars(select.items, layout)
        has_aggs = (bool(select.group_by)
                    or any(_contains_aggregate(i.expr) for i in items)
                    or (select.having is not None
                        and _contains_aggregate(select.having)))

        if has_aggs:
            plan, compile_layout, rewritten_items, having_fn, \
                rewritten_order = self._plan_aggregation(
                    select, items, plan, layout)
            if having_fn is not None:
                plan = ops.Filter(plan, having_fn)
            compiled = [compile_expr(i.expr, compile_layout)
                        for i in rewritten_items]
        else:
            if select.having is not None:
                raise PlanningError("HAVING requires GROUP BY or aggregates")
            compile_layout = layout
            compiled = [compile_expr(i.expr, compile_layout) for i in items]
            rewritten_items = items
            rewritten_order = [o.expr for o in select.order_by]

        output_layout = RowLayout([
            (None,
             item.alias or default_name(original.expr),
             infer_type(item.expr, compile_layout))
            for item, original in zip(rewritten_items, items)
        ])
        return finish_projection(select, items, plan, compiled, output_layout,
                                 rewritten_order, compile_layout,
                                 item_exprs=[i.expr for i in rewritten_items])

    def _plan_aggregation(self, select: ast.Select, items, plan,
                          layout: RowLayout):
        group_exprs = list(select.group_by)
        order_exprs = [o.expr for o in select.order_by]
        rewritten_items, rewritten_having, rewritten_order, agg_calls = \
            rewrite_aggregates(group_exprs, items, select.having, order_exprs)

        group_fns = [compile_expr(g, layout) for g in group_exprs]
        specs = make_agg_specs(agg_calls, layout)

        plan = ops.HashAggregate(plan, group_fns, specs)
        plan.vector_info = (group_exprs, agg_calls, layout)
        post_layout = post_agg_layout(group_exprs, agg_calls, layout)

        having_fn = (compile_expr(rewritten_having, post_layout)
                     if rewritten_having is not None else None)
        return plan, post_layout, rewritten_items, having_fn, rewritten_order


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def finish_projection(select: ast.Select, items, plan, compiled,
                      output_layout: RowLayout, rewritten_order,
                      compile_layout: RowLayout,
                      item_exprs=None) -> PhysicalPlan:
    """Build Project / Distinct / Sort / Limit on top of ``plan``.

    ORDER BY keys resolve, in order of preference, against: an output
    position (``ORDER BY 2``), a select-item expression (``ORDER BY
    count(*)``), an output column or alias, and finally any expression
    over the pre-projection input — the last via an *extended projection*
    (the key is computed alongside the select list, sorted on, then
    stripped), which is how ``SELECT name ... ORDER BY salary`` works.
    """
    key_fns = []
    descending = []
    extra_fns = []
    width = len(items)
    for order, rexpr in zip(select.order_by, rewritten_order):
        expr = order.expr
        descending.append(order.descending)
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < width:
                raise BindError(
                    f"ORDER BY position {expr.value} out of range")
            key_fns.append(lambda row, ctx, p=position: row[p])
            continue
        matched = None
        for i, item in enumerate(items):
            if expr == item.expr or (item.alias is not None
                                     and expr == ast.ColumnRef(item.alias)):
                matched = i
                break
        if matched is not None:
            key_fns.append(lambda row, ctx, p=matched: row[p])
            continue
        try:
            key_fns.append(compile_expr(expr, output_layout))
            continue
        except BindError:
            pass
        position = width + len(extra_fns)
        extra_fns.append(compile_expr(rexpr, compile_layout))
        key_fns.append(lambda row, ctx, p=position: row[p])

    if extra_fns and select.distinct:
        raise PlanningError(
            "for SELECT DISTINCT, ORDER BY expressions must appear "
            "in the select list"
        )

    plan = ops.Project(plan, compiled + extra_fns)
    if item_exprs is not None and not extra_fns:
        plan.vector_info = (item_exprs, compile_layout)
    if select.distinct:
        plan = ops.Distinct(plan)
    if select.order_by:
        plan = ops.Sort(plan, key_fns, descending)
    if extra_fns:
        strip = [
            (lambda row, ctx, p=i: row[p]) for i in range(width)
        ]
        plan = ops.Project(plan, strip)
    if select.limit is not None or select.offset is not None:
        plan = ops.Limit(plan, select.limit, select.offset)
    return PhysicalPlan(plan, output_layout)


def rewrite_aggregates(group_exprs, items, having, order_exprs=()):
    """Rewrite post-aggregation expressions against synthetic columns.

    Subtrees equal to a GROUP BY expression become ``__g<i>`` references;
    aggregate calls become ``__a<j>`` references (deduplicated by AST
    equality).  ``order_exprs`` are rewritten too, so ``ORDER BY sum(x)``
    works even when ``sum(x)`` is not in the select list.  Returns
    (rewritten_items, rewritten_having, rewritten_order, agg_calls).
    Raises when a raw column escapes a select item — the standard "must
    appear in GROUP BY" error.  Shared by the planner and the
    slice-sharing engine.
    """
    agg_calls: List[ast.FunctionCall] = []

    def rewrite(expr: ast.Expr) -> ast.Expr:
        for i, group in enumerate(group_exprs):
            if expr == group:
                return ast.ColumnRef(f"__g{i}")
        if isinstance(expr, ast.FunctionCall) and is_aggregate_name(expr.name):
            for j, seen in enumerate(agg_calls):
                if expr == seen:
                    return ast.ColumnRef(f"__a{j}")
            agg_calls.append(expr)
            return ast.ColumnRef(f"__a{len(agg_calls) - 1}")
        return _rebuild(expr, rewrite)

    rewritten_items = [
        ast.SelectItem(rewrite(item.expr), item.alias) for item in items
    ]
    rewritten_having = rewrite(having) if having is not None else None
    rewritten_order = [rewrite(expr) for expr in order_exprs]

    for item in rewritten_items:
        for node in ast.walk_expr(item.expr):
            if isinstance(node, ast.ColumnRef) and \
                    not node.name.startswith("__"):
                raise PlanningError(
                    f"column {node.name!r} must appear in GROUP BY "
                    "or be used in an aggregate"
                )
    return rewritten_items, rewritten_having, rewritten_order, agg_calls


def make_agg_specs(agg_calls, layout: RowLayout):
    """Build (Aggregate, arg_fn|None) pairs for collected aggregate calls."""
    specs = []
    for call in agg_calls:
        star = bool(call.args) and isinstance(call.args[0], ast.Star)
        no_args = not call.args
        agg = make_aggregate(call.name, call.distinct, star or no_args)
        if star or no_args:
            arg_fn = None
        else:
            arg_fn = compile_expr(call.args[0], layout)
        specs.append((agg, arg_fn))
    return specs


def post_agg_layout(group_exprs, agg_calls, layout: RowLayout) -> RowLayout:
    """The synthetic ``__g.../__a...`` layout produced by aggregation."""
    entries = []
    for i, group in enumerate(group_exprs):
        entries.append((None, f"__g{i}", infer_type(group, layout)))
    for j, call in enumerate(agg_calls):
        entries.append((None, f"__a{j}", _agg_result_type(call, layout)))
    return RowLayout(entries)


def _and_all(exprs: List[ast.Expr]) -> ast.Expr:
    combined = exprs[0]
    for expr in exprs[1:]:
        combined = ast.BinaryOp("AND", combined, expr)
    return combined


def _alias_layout(layout: RowLayout, alias: str) -> RowLayout:
    renamed = RowLayout([])
    renamed.entries = [(alias.lower(), n, t) for (_a, n, t) in layout.entries]
    return renamed


def _expand_stars(items, layout: RowLayout) -> List[ast.SelectItem]:
    expanded = []
    for item in items:
        if isinstance(item.expr, ast.Star):
            star = item.expr
            if star.table is not None:
                columns = layout.columns_of(star.table)
                if not columns:
                    raise BindError(f"unknown alias {star.table!r} for '*'")
                for _i, name, _t in columns:
                    expanded.append(ast.SelectItem(
                        ast.ColumnRef(name, star.table), None))
            else:
                for alias, name, _t in layout.entries:
                    expanded.append(ast.SelectItem(
                        ast.ColumnRef(name, alias), None))
        else:
            expanded.append(item)
    return expanded


def _contains_aggregate(expr: ast.Expr) -> bool:
    return any(
        isinstance(node, ast.FunctionCall) and is_aggregate_name(node.name)
        for node in ast.walk_expr(expr)
    )


def _rebuild(expr: ast.Expr, transform) -> ast.Expr:
    """Rebuild an expression with ``transform`` applied to children."""
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, transform(expr.left), transform(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, transform(expr.operand))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(transform(expr.operand), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(transform(expr.operand), transform(expr.pattern),
                        expr.negated, expr.case_insensitive)
    if isinstance(expr, ast.InList):
        return ast.InList(transform(expr.operand),
                          [transform(i) for i in expr.items], expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(transform(expr.operand), transform(expr.low),
                           transform(expr.high), expr.negated)
    if isinstance(expr, ast.Cast):
        return ast.Cast(transform(expr.operand), expr.type_name, expr.length)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                [transform(a) for a in expr.args],
                                expr.distinct)
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            transform(expr.operand) if expr.operand else None,
            [(transform(w), transform(t)) for w, t in expr.branches],
            transform(expr.default) if expr.default else None,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(transform(expr.operand), expr.query,
                              expr.negated)
    if isinstance(expr, PlannedSubquery):
        if expr.operand is None:
            return expr
        return PlannedSubquery(expr.plan, expr.kind, expr.negated,
                               expr.result_type, transform(expr.operand))
    return expr


def _agg_result_type(call: ast.FunctionCall, layout: RowLayout):
    name = call.name.lower()
    if name == "count":
        return IntegerType("bigint")
    if name in ("sum", "min", "max") and call.args \
            and not isinstance(call.args[0], ast.Star):
        try:
            return infer_type(call.args[0], layout)
        except BindError:
            return DoubleType()
    if name == "string_agg":
        from repro.types.datatypes import VarcharType
        return VarcharType(None, "text")
    return DoubleType()


def _match_column_vs_constant(expr: ast.Expr, layout: RowLayout):
    """Match ``col OP constant`` (either orientation) against ``layout``.

    Returns (column_name_lower, op, constant_expr) or None.  BETWEEN is
    returned as None here; ranges are assembled from </> conjuncts.
    """
    if not isinstance(expr, ast.BinaryOp):
        return None
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if expr.op not in flip:
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, ast.ColumnRef) and _column_free(right):
        column, constant = left, right
    elif isinstance(right, ast.ColumnRef) and _column_free(left):
        column, constant, op = right, left, flip[op]
    else:
        return None
    try:
        layout.resolve(column.table, column.name)
    except BindError:
        return None
    return column.name.lower(), op, constant


def _match_equi_key(term: ast.Expr, left_layout: RowLayout,
                    right_layout: RowLayout):
    """Match ``left_expr = right_expr`` split across the two join inputs."""
    if not (isinstance(term, ast.BinaryOp) and term.op == "="):
        return None
    a, b = term.left, term.right
    if _covered(a, left_layout) and _covered(b, right_layout):
        return a, b
    if _covered(b, left_layout) and _covered(a, right_layout):
        return b, a
    return None
