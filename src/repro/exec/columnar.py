"""Columnar batch representation for the vectorized executor.

A :class:`ColumnBatch` holds one numpy array per column plus an optional
boolean null mask per column (``True`` marks a NULL lane).  Batches are
built from the row-tuple lists the streaming runtime already produces,
and convert back to plain Python row tuples at the iterator boundary, so
the vectorized path is a drop-in replacement for any subtree of a plan.

numpy is an *optional* dependency: the iterator executor works without
it.  Everything that needs numpy goes through :func:`require_numpy`,
which raises a clear error naming the install command.  Setting the
``REPRO_DISABLE_NUMPY`` environment variable simulates a missing numpy
(used by tests to prove the iterator fallback stays green).
"""
from __future__ import annotations

import os
from typing import List, Optional, Sequence

try:
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        raise ImportError("numpy disabled via REPRO_DISABLE_NUMPY")
    import numpy as np
    HAS_NUMPY = True
    _IMPORT_ERROR: Optional[str] = None
except ImportError as exc:  # pragma: no cover - exercised via env knob
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False
    _IMPORT_ERROR = str(exc)


def require_numpy() -> None:
    """Raise a helpful error when the vectorized path is used sans numpy."""
    if not HAS_NUMPY:
        raise ImportError(
            "repro.exec.columnar requires numpy for the vectorized "
            "executor (install it with `pip install numpy`); the "
            f"iterator executor works without it [{_IMPORT_ERROR}]")


# DataType kind -> numpy dtype used for the value array.  Anything not
# listed (varchar, unknown types) is stored as an object array, which
# still vectorizes equality filters and grouping.
_FLOAT_KINDS = {"double", "timestamp", "interval"}
_INT_KINDS = {"integer", "bigint", "smallint"}


def dtype_for(datatype) -> object:
    """Pick the numpy dtype for a column of the given engine DataType."""
    require_numpy()
    name = type(datatype).__name__
    if name == "IntegerType":
        return np.int64
    if name in ("DoubleType", "TimestampType", "IntervalType"):
        return np.float64
    if name == "BooleanType":
        return np.bool_
    return object


class ColumnBatch:
    """A batch of rows stored column-wise.

    ``columns[i]`` is a numpy array of the column values; ``masks[i]``
    is either ``None`` (no NULLs in this batch) or a boolean array where
    ``True`` marks a NULL.  Masked lanes of numeric columns hold a fill
    value (0) and must never be read without consulting the mask.
    """

    __slots__ = ("columns", "masks", "length")

    def __init__(self, columns: List, masks: List, length: int):
        self.columns = columns
        self.masks = masks
        self.length = length

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence], types: Sequence) -> "ColumnBatch":
        """Build a batch from row tuples using the schema's data types."""
        require_numpy()
        n = len(rows)
        ncols = len(types)
        if n == 0:
            columns = [np.empty(0, dtype=dtype_for(t)) for t in types]
            return cls(columns, [None] * ncols, 0)
        cols = list(zip(*rows))
        columns: List = []
        masks: List = []
        for values, datatype in zip(cols, types):
            dtype = dtype_for(datatype)
            # `None in tuple` is a C-level scan; rows with no NULLs take
            # the direct-conversion fast path.
            has_null = None in values
            if dtype is object:
                arr = np.empty(n, dtype=object)
                arr[:] = values
                if has_null:
                    mask = np.fromiter((v is None for v in values),
                                       dtype=bool, count=n)
                else:
                    mask = None
            elif has_null:
                mask = np.fromiter((v is None for v in values),
                                   dtype=bool, count=n)
                arr = np.array([0 if v is None else v for v in values],
                               dtype=dtype)
            else:
                mask = None
                try:
                    arr = np.array(values, dtype=dtype)
                except (TypeError, ValueError, OverflowError):
                    # e.g. a Python int too large for int64 — keep the
                    # exact values in an object array rather than wrap
                    arr = np.empty(n, dtype=object)
                    arr[:] = values
            columns.append(arr)
            masks.append(mask)
        return cls(columns, masks, n)

    def to_rows(self) -> List[tuple]:
        """Convert back to plain Python row tuples (NULLs become None)."""
        if self.length == 0:
            return []
        pycols = []
        for arr, mask in zip(self.columns, self.masks):
            # .tolist() converts numpy scalars to native Python values
            values = arr.tolist()
            if mask is not None:
                values = [None if m else v
                          for v, m in zip(values, mask.tolist())]
            pycols.append(values)
        return list(zip(*pycols))

    def take(self, keep) -> "ColumnBatch":
        """Return a new batch with only the lanes where ``keep`` is True."""
        columns = [arr[keep] for arr in self.columns]
        masks = [None if m is None else m[keep] for m in self.masks]
        length = int(columns[0].shape[0]) if columns else 0
        return ColumnBatch(columns, masks, length)
