"""Aggregate functions with *mergeable* partial states.

Every aggregate exposes ``create() -> state``, ``add(state, value)``,
``merge(a, b) -> state`` and ``result(state)``.  Mergeability is what
enables the paper's shared, incremental window processing (Section 2.2,
refs [4, 12]): the streaming engine aggregates each arriving tuple once
into the current *slice*, then combines slice partials at each window
close — and many CQs can combine the same slices.
"""

from __future__ import annotations

from repro.errors import BindError
from repro.types.datatypes import DoubleType, IntegerType, VarcharType
from repro.types.values import sql_compare

AGGREGATE_NAMES = frozenset({
    "count", "sum", "avg", "min", "max",
    "stddev", "stddev_samp", "stddev_pop",
    "variance", "var_samp", "var_pop",
    "bool_and", "bool_or", "string_agg", "median",
})


class Aggregate:
    """Base class; subclasses define the four state operations."""

    name = "aggregate"
    result_type = DoubleType()

    def create(self):
        raise NotImplementedError

    def add(self, state, value):
        raise NotImplementedError

    def merge(self, left, right):
        raise NotImplementedError

    def result(self, state):
        raise NotImplementedError


class CountStar(Aggregate):
    """``count(*)`` — counts rows, including NULLs."""

    name = "count"
    result_type = IntegerType("bigint")

    def create(self):
        return 0

    def add(self, state, value):
        return state + 1

    def merge(self, left, right):
        return left + right

    def result(self, state):
        return state


class Count(CountStar):
    """``count(x)`` — counts non-NULL values."""

    def add(self, state, value):
        if value is None:
            return state
        return state + 1


class CountDistinct(Aggregate):
    """``count(DISTINCT x)`` — set-valued state, merge by union."""

    name = "count_distinct"
    result_type = IntegerType("bigint")

    def create(self):
        return set()

    def add(self, state, value):
        if value is not None:
            state.add(value)
        return state

    def merge(self, left, right):
        return left | right

    def result(self, state):
        return len(state)


class Sum(Aggregate):
    """``sum(x)`` — NULL over empty input, per the standard."""

    name = "sum"

    def create(self):
        return None

    def add(self, state, value):
        if value is None:
            return state
        if state is None:
            return value
        return state + value

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    def result(self, state):
        return state


class Avg(Aggregate):
    """``avg(x)`` — (sum, count) state."""

    name = "avg"

    def create(self):
        return (0.0, 0)

    def add(self, state, value):
        if value is None:
            return state
        total, count = state
        return (total + value, count + 1)

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def result(self, state):
        total, count = state
        if count == 0:
            return None
        return total / count


class _Extreme(Aggregate):
    """Shared implementation of MIN/MAX."""

    def __init__(self, want_max: bool):
        self._want_max = want_max
        self.name = "max" if want_max else "min"

    def create(self):
        return None

    def add(self, state, value):
        if value is None:
            return state
        if state is None:
            return value
        c = sql_compare(value, state)
        if self._want_max:
            return value if c > 0 else state
        return value if c < 0 else state

    def merge(self, left, right):
        return self.add(left, right)

    def result(self, state):
        return state


class Variance(Aggregate):
    """Variance/stddev via mergeable (count, sum, sum-of-squares) state.

    The naive moments form is used deliberately: it is exactly mergeable,
    which Welford's online form is not without extra bookkeeping.
    """

    def __init__(self, sample: bool = True, stddev: bool = False):
        self._sample = sample
        self._stddev = stddev
        self.name = ("stddev" if stddev else "variance") + (
            "_samp" if sample else "_pop")

    def create(self):
        return (0, 0.0, 0.0)

    def add(self, state, value):
        if value is None:
            return state
        n, s, ss = state
        return (n + 1, s + value, ss + value * value)

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1], left[2] + right[2])

    def result(self, state):
        n, s, ss = state
        denominator = n - 1 if self._sample else n
        if denominator <= 0:
            return None
        variance = max(0.0, (ss - s * s / n) / denominator)
        if self._stddev:
            return variance ** 0.5
        return variance


class BoolAnd(Aggregate):
    name = "bool_and"

    def create(self):
        return None

    def add(self, state, value):
        if value is None:
            return state
        if state is None:
            return bool(value)
        return state and bool(value)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left and right

    def result(self, state):
        return state


class BoolOr(BoolAnd):
    name = "bool_or"

    def add(self, state, value):
        if value is None:
            return state
        if state is None:
            return bool(value)
        return state or bool(value)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left or right


class Median(Aggregate):
    """``median(x)`` — holds the values; merge concatenates.

    State size is O(window rows), which is bounded for windowed CQs.
    Exact (not an approximation sketch); even-count inputs average the
    two middle values.
    """

    name = "median"

    def create(self):
        return []

    def add(self, state, value):
        if value is not None:
            state.append(value)
        return state

    def merge(self, left, right):
        return left + right

    def result(self, state):
        if not state:
            return None
        ordered = sorted(state)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2


class StringAgg(Aggregate):
    """``string_agg(x)`` with ',' separator; list state, mergeable."""

    name = "string_agg"
    result_type = VarcharType(None, "text")

    def create(self):
        return []

    def add(self, state, value):
        if value is not None:
            state.append(str(value))
        return state

    def merge(self, left, right):
        return left + right

    def result(self, state):
        if not state:
            return None
        return ",".join(state)


def make_aggregate(name: str, distinct: bool = False,
                   star: bool = False) -> Aggregate:
    """Instantiate the aggregate for a parsed call."""
    name = name.lower()
    if name == "count":
        if distinct:
            return CountDistinct()
        if star:
            return CountStar()
        return Count()
    if distinct:
        raise BindError(f"DISTINCT is only supported for count ({name})")
    if name == "sum":
        return Sum()
    if name == "avg":
        return Avg()
    if name == "min":
        return _Extreme(False)
    if name == "max":
        return _Extreme(True)
    if name in ("stddev", "stddev_samp"):
        return Variance(sample=True, stddev=True)
    if name == "stddev_pop":
        return Variance(sample=False, stddev=True)
    if name in ("variance", "var_samp"):
        return Variance(sample=True, stddev=False)
    if name == "var_pop":
        return Variance(sample=False, stddev=False)
    if name == "bool_and":
        return BoolAnd()
    if name == "bool_or":
        return BoolOr()
    if name == "string_agg":
        return StringAgg()
    if name == "median":
        return Median()
    raise BindError(f"unknown aggregate {name!r}")


def is_aggregate_name(name: str) -> bool:
    return name.lower() in AGGREGATE_NAMES
