"""Compiling AST expressions to Python closures.

A compiled expression is ``f(row, ctx) -> value`` where ``row`` is the
input tuple and ``ctx`` is a per-batch context dict.  The context carries
streaming values that are constant within one window evaluation — most
importantly ``cq_close`` (the paper's ``cq_close(*)`` function, Example 3,
which "returns the timestamp at the close of the relevant window").
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import BindError, ExecutionError, TypeError_
from repro.sql import ast
from repro.types.datatypes import (
    BooleanType,
    DataType,
    DoubleType,
    IntegerType,
    IntervalType,
    TimestampType,
    VarcharType,
    type_from_name,
)
from repro.types.temporal import format_timestamp
from repro.types.values import sql_compare, sql_like

#: functions evaluated from the per-batch context, not the row
CONTEXT_FUNCTIONS = {"cq_close", "cq_open"}


class PlannedSubquery(ast.Expr):
    """An uncorrelated subquery already planned by the planner.

    ``kind`` is ``'in'``, ``'exists'`` or ``'scalar'``.  The subplan is
    evaluated lazily, once per execution context (so inside a CQ it
    re-runs each window, seeing the window-consistent snapshot).
    """

    def __init__(self, plan, kind: str, negated: bool = False,
                 result_type: Optional["DataType"] = None, operand=None):
        self.plan = plan
        self.kind = kind
        self.negated = negated
        self.result_type = result_type
        self.operand = operand  # the LHS expression of IN

    def __repr__(self):
        return f"PlannedSubquery({self.kind})"


def _subquery_rows(planned: PlannedSubquery, ctx):
    """Evaluate (or reuse) the subquery's rows for this execution."""
    if ctx is None:
        return list(planned.plan.execute({}))
    cache = ctx.setdefault("_subqueries", {})
    key = id(planned)
    if key not in cache:
        cache[key] = list(planned.plan.execute(ctx))
    return cache[key]


class RowLayout:
    """Maps (alias, column) names to tuple positions with types.

    ``entries`` is a list of ``(alias, name, DataType)``; alias may be
    None for computed columns.
    """

    def __init__(self, entries):
        self.entries = [(a.lower() if a else None, n.lower(), t)
                        for a, n, t in entries]

    def __len__(self):
        return len(self.entries)

    def resolve(self, table, name):
        """Return (index, type); raises BindError on missing/ambiguous."""
        name = name.lower()
        if table is not None:
            table = table.lower()
            matches = [
                (i, t) for i, (a, n, t) in enumerate(self.entries)
                if a == table and n == name
            ]
        else:
            matches = [
                (i, t) for i, (a, n, t) in enumerate(self.entries)
                if n == name
            ]
        if not matches:
            qual = f"{table}.{name}" if table else name
            raise BindError(f"column {qual!r} does not exist")
        if len(matches) > 1:
            raise BindError(f"column reference {name!r} is ambiguous")
        return matches[0]

    def columns_of(self, table):
        """All (index, name, type) belonging to alias ``table``."""
        table = table.lower()
        return [
            (i, n, t) for i, (a, n, t) in enumerate(self.entries)
            if a == table
        ]

    def concat(self, other: "RowLayout") -> "RowLayout":
        out = RowLayout([])
        out.entries = self.entries + other.entries
        return out

    def names(self):
        return [n for _a, n, _t in self.entries]

    def types(self):
        return [t for _a, _n, t in self.entries]


# ---------------------------------------------------------------------------
# scalar function registry
# ---------------------------------------------------------------------------


def _null_guard(fn):
    def wrapped(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)
    return wrapped


def _substr(s, start, length=None):
    start = int(start) - 1  # SQL is 1-based
    if start < 0:
        start = 0
    if length is None:
        return s[start:]
    return s[start:start + int(length)]


def _round(x, digits=0):
    return round(float(x), int(digits))


_TRUNC_UNITS = {
    "second": 1.0,
    "minute": 60.0,
    "hour": 3600.0,
    "day": 86400.0,
    "week": 7 * 86400.0,
}


def _date_trunc(unit, ts):
    width = _TRUNC_UNITS.get(str(unit).lower())
    if width is None:
        raise ExecutionError(f"date_trunc: unknown unit {unit!r}")
    return math.floor(ts / width) * width


def _split_part(s, delimiter, n):
    parts = str(s).split(str(delimiter))
    index = int(n) - 1
    if 0 <= index < len(parts):
        return parts[index]
    return ""


def _strpos(s, needle):
    return str(s).find(str(needle)) + 1


def _left(s, n):
    n = int(n)
    return str(s)[:n] if n >= 0 else str(s)[:n or None]


def _right(s, n):
    n = int(n)
    if n <= 0:
        return str(s)[-n if n else len(str(s)):]
    return str(s)[-n:]


def _lpad(s, width, fill=" "):
    text = str(s)
    width = int(width)
    if len(text) >= width:
        return text[:width]
    pad = str(fill) * width
    return pad[:width - len(text)] + text


SCALAR_FUNCTIONS = {
    "lower": (_null_guard(lambda s: str(s).lower()), VarcharType(None, "text")),
    "upper": (_null_guard(lambda s: str(s).upper()), VarcharType(None, "text")),
    "initcap": (_null_guard(lambda s: str(s).title()),
                VarcharType(None, "text")),
    "trim": (_null_guard(lambda s: str(s).strip()), VarcharType(None, "text")),
    "ltrim": (_null_guard(lambda s: str(s).lstrip()),
              VarcharType(None, "text")),
    "rtrim": (_null_guard(lambda s: str(s).rstrip()),
              VarcharType(None, "text")),
    "replace": (_null_guard(lambda s, old, new: str(s).replace(str(old),
                                                               str(new))),
                VarcharType(None, "text")),
    "split_part": (_null_guard(_split_part), VarcharType(None, "text")),
    "strpos": (_null_guard(_strpos), IntegerType()),
    "position": (_null_guard(lambda needle, s: _strpos(s, needle)),
                 IntegerType()),
    "left": (_null_guard(_left), VarcharType(None, "text")),
    "right": (_null_guard(_right), VarcharType(None, "text")),
    "repeat": (_null_guard(lambda s, n: str(s) * max(0, int(n))),
               VarcharType(None, "text")),
    "lpad": (_null_guard(_lpad), VarcharType(None, "text")),
    "reverse": (_null_guard(lambda s: str(s)[::-1]),
                VarcharType(None, "text")),
    "starts_with": (_null_guard(lambda s, p: str(s).startswith(str(p))),
                    BooleanType()),
    "sign": (_null_guard(lambda x: (x > 0) - (x < 0)), IntegerType()),
    "trunc": (_null_guard(lambda x: math.trunc(x)), IntegerType("bigint")),
    "exp": (_null_guard(math.exp), DoubleType()),
    "length": (_null_guard(lambda s: len(str(s))), IntegerType()),
    "abs": (_null_guard(abs), DoubleType()),
    "round": (_null_guard(_round), DoubleType()),
    "floor": (_null_guard(lambda x: math.floor(x)), IntegerType("bigint")),
    "ceil": (_null_guard(lambda x: math.ceil(x)), IntegerType("bigint")),
    "ceiling": (_null_guard(lambda x: math.ceil(x)), IntegerType("bigint")),
    "sqrt": (_null_guard(math.sqrt), DoubleType()),
    "ln": (_null_guard(math.log), DoubleType()),
    "log": (_null_guard(math.log10), DoubleType()),
    "power": (_null_guard(lambda x, y: float(x) ** float(y)), DoubleType()),
    "mod": (_null_guard(lambda x, y: x % y), IntegerType("bigint")),
    "substr": (_null_guard(_substr), VarcharType(None, "text")),
    "substring": (_null_guard(_substr), VarcharType(None, "text")),
    "concat": (lambda *a: "".join(str(x) for x in a if x is not None),
               VarcharType(None, "text")),
    "date_trunc": (_null_guard(_date_trunc), TimestampType()),
    "to_timestamp": (_null_guard(lambda x: float(x)), TimestampType()),
    "format_timestamp": (_null_guard(format_timestamp), VarcharType(None, "text")),
    "greatest": (lambda *a: max((x for x in a if x is not None), default=None),
                 DoubleType()),
    "least": (lambda *a: min((x for x in a if x is not None), default=None),
              DoubleType()),
}

_VARIADIC_NULL_OK = {"coalesce", "nullif", "concat", "greatest", "least"}


# ---------------------------------------------------------------------------
# arithmetic / logic helpers (three-valued)
# ---------------------------------------------------------------------------


def _arith(op, left, right):
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            result = left / right
            return result
        if op == "%":
            if right == 0:
                raise ExecutionError("division by zero")
            return left % right
    except TypeError as exc:
        raise TypeError_(f"bad operands for {op}: {left!r}, {right!r}") from exc
    raise ExecutionError(f"unknown operator {op}")


def _and(left, right):
    # three-valued AND
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _or(left, right):
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


_COMPARE_OPS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


def compile_expr(expr: ast.Expr, layout: RowLayout):
    """Compile ``expr`` against ``layout``; returns ``f(row, ctx)``."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row, ctx: value

    if isinstance(expr, ast.ColumnRef):
        index, _type = layout.resolve(expr.table, expr.name)
        return lambda row, ctx: row[index]

    if isinstance(expr, ast.Parameter):
        position = expr.index

        def parameter(row, ctx):
            params = (ctx or {}).get("params")
            if params is None or position >= len(params):
                raise ExecutionError(
                    f"statement needs at least {position + 1} parameter(s)"
                )
            return params[position]
        return parameter

    if isinstance(expr, ast.Star):
        raise BindError("'*' is not valid in this context")

    if isinstance(expr, ast.BinaryOp):
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        op = expr.op
        if op == "AND":
            return lambda row, ctx: _and(left(row, ctx), right(row, ctx))
        if op == "OR":
            return lambda row, ctx: _or(left(row, ctx), right(row, ctx))
        if op in _COMPARE_OPS:
            test = _COMPARE_OPS[op]

            def compare(row, ctx, left=left, right=right, test=test):
                c = sql_compare(left(row, ctx), right(row, ctx))
                if c is None:
                    return None
                return test(c)
            return compare
        if op == "||":
            def concat(row, ctx, left=left, right=right):
                lhs, rhs = left(row, ctx), right(row, ctx)
                if lhs is None or rhs is None:
                    return None
                return str(lhs) + str(rhs)
            return concat
        return lambda row, ctx: _arith(op, left(row, ctx), right(row, ctx))

    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, layout)
        if expr.op == "NOT":
            def negate(row, ctx):
                value = operand(row, ctx)
                if value is None:
                    return None
                return not value
            return negate
        if expr.op == "-":
            def minus(row, ctx):
                value = operand(row, ctx)
                return None if value is None else -value
            return minus
        return operand

    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, layout)
        if expr.negated:
            return lambda row, ctx: operand(row, ctx) is not None
        return lambda row, ctx: operand(row, ctx) is None

    if isinstance(expr, ast.Like):
        operand = compile_expr(expr.operand, layout)
        pattern = compile_expr(expr.pattern, layout)
        ci = expr.case_insensitive
        negated = expr.negated

        def like(row, ctx):
            result = sql_like(operand(row, ctx), pattern(row, ctx), ci)
            if result is None:
                return None
            return not result if negated else result
        return like

    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, layout)
        items = [compile_expr(item, layout) for item in expr.items]
        negated = expr.negated

        def contains(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row, ctx)
                if candidate is None:
                    saw_null = True
                    continue
                c = sql_compare(value, candidate)
                if c == 0:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False
        return contains

    if isinstance(expr, ast.Between):
        operand = compile_expr(expr.operand, layout)
        low = compile_expr(expr.low, layout)
        high = compile_expr(expr.high, layout)
        negated = expr.negated

        def between(row, ctx):
            value = operand(row, ctx)
            lo_cmp = sql_compare(value, low(row, ctx))
            hi_cmp = sql_compare(value, high(row, ctx))
            if lo_cmp is None or hi_cmp is None:
                return None
            inside = lo_cmp >= 0 and hi_cmp <= 0
            return not inside if negated else inside
        return between

    if isinstance(expr, ast.Cast):
        operand = compile_expr(expr.operand, layout)
        target = type_from_name(expr.type_name, expr.length)
        return lambda row, ctx: target.coerce(operand(row, ctx))

    if isinstance(expr, ast.CaseExpr):
        return _compile_case(expr, layout)

    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, layout)

    if isinstance(expr, PlannedSubquery):
        return _compile_subquery(expr, layout)

    if isinstance(expr, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
        raise BindError(
            "subquery reached the compiler unplanned; subqueries are only "
            "supported where the planner binds them (WHERE/SELECT/HAVING)"
        )

    raise BindError(f"cannot compile expression {expr!r}")


def _compile_subquery(expr: PlannedSubquery, layout: RowLayout):
    if expr.kind == "exists":
        negated = expr.negated

        def exists(row, ctx):
            found = bool(_subquery_rows(expr, ctx))
            return not found if negated else found
        return exists

    if expr.kind == "scalar":
        def scalar(row, ctx):
            rows = _subquery_rows(expr, ctx)
            if not rows:
                return None
            if len(rows) > 1:
                raise ExecutionError(
                    "scalar subquery produced more than one row")
            return rows[0][0]
        return scalar

    # kind == 'in'
    operand = compile_expr(expr.operand, layout)
    negated = expr.negated

    def in_subquery(row, ctx, operand=operand):
        value = operand(row, ctx)
        if value is None:
            return None
        rows = _subquery_rows(expr, ctx)
        saw_null = False
        for candidate_row in rows:
            candidate = candidate_row[0]
            if candidate is None:
                saw_null = True
                continue
            if sql_compare(value, candidate) == 0:
                return False if negated else True
        if saw_null:
            return None
        return True if negated else False
    return in_subquery


def _compile_case(expr: ast.CaseExpr, layout: RowLayout):
    branches = [
        (compile_expr(when, layout), compile_expr(then, layout))
        for when, then in expr.branches
    ]
    default = compile_expr(expr.default, layout) if expr.default else None
    if expr.operand is not None:
        operand = compile_expr(expr.operand, layout)

        def simple_case(row, ctx):
            subject = operand(row, ctx)
            for when, then in branches:
                if sql_compare(subject, when(row, ctx)) == 0:
                    return then(row, ctx)
            return default(row, ctx) if default else None
        return simple_case

    def searched_case(row, ctx):
        for when, then in branches:
            if when(row, ctx) is True:
                return then(row, ctx)
        return default(row, ctx) if default else None
    return searched_case


def _compile_function(expr: ast.FunctionCall, layout: RowLayout):
    name = expr.name
    if name in CONTEXT_FUNCTIONS:
        def from_context(row, ctx, name=name):
            if ctx is None or name not in ctx:
                raise ExecutionError(
                    f"{name}(*) is only valid in a continuous query"
                )
            return ctx[name]
        return from_context

    if name == "coalesce":
        args = [compile_expr(a, layout) for a in expr.args]

        def coalesce(row, ctx):
            for arg in args:
                value = arg(row, ctx)
                if value is not None:
                    return value
            return None
        return coalesce

    if name == "nullif":
        if len(expr.args) != 2:
            raise BindError("nullif takes exactly 2 arguments")
        first = compile_expr(expr.args[0], layout)
        second = compile_expr(expr.args[1], layout)

        def nullif(row, ctx):
            a = first(row, ctx)
            if sql_compare(a, second(row, ctx)) == 0:
                return None
            return a
        return nullif

    entry = SCALAR_FUNCTIONS.get(name)
    if entry is None:
        raise BindError(f"unknown function {name!r}")
    fn, _result_type = entry
    args = [compile_expr(a, layout) for a in expr.args]
    return lambda row, ctx: fn(*[a(row, ctx) for a in args])


# ---------------------------------------------------------------------------
# type inference (best-effort; used to name/type derived schemas)
# ---------------------------------------------------------------------------


def infer_type(expr: ast.Expr, layout: RowLayout) -> DataType:
    """Best-effort static type of ``expr`` (defaults to double/text)."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, bool):
            return BooleanType()
        if isinstance(value, int):
            return IntegerType("bigint")
        if isinstance(value, float):
            return DoubleType()
        if isinstance(value, str):
            return VarcharType(None, "text")
        return VarcharType(None, "text")
    if isinstance(expr, ast.ColumnRef):
        _index, datatype = layout.resolve(expr.table, expr.name)
        return datatype
    if isinstance(expr, ast.Cast):
        return type_from_name(expr.type_name, expr.length)
    if isinstance(expr, (ast.IsNull, ast.Like, ast.InList, ast.Between)):
        return BooleanType()
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return BooleanType()
        return infer_type(expr.operand, layout)
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("AND", "OR") or expr.op in _COMPARE_OPS:
            return BooleanType()
        if expr.op == "||":
            return VarcharType(None, "text")
        left = infer_type(expr.left, layout)
        right = infer_type(expr.right, layout)
        if isinstance(left, TimestampType) or isinstance(right, TimestampType):
            if isinstance(left, TimestampType) and isinstance(right, TimestampType):
                return IntervalType()
            return TimestampType()
        if isinstance(left, IntegerType) and isinstance(right, IntegerType) \
                and expr.op != "/":
            return IntegerType("bigint")
        return DoubleType()
    if isinstance(expr, ast.CaseExpr):
        for _when, then in expr.branches:
            return infer_type(then, layout)
        return VarcharType(None, "text")
    if isinstance(expr, PlannedSubquery):
        if expr.kind in ("exists", "in"):
            return BooleanType()
        return expr.result_type or VarcharType(None, "text")
    if isinstance(expr, (ast.InSubquery, ast.Exists)):
        return BooleanType()
    if isinstance(expr, ast.FunctionCall):
        if expr.name in CONTEXT_FUNCTIONS:
            return TimestampType()
        if expr.name == "coalesce" and expr.args:
            return infer_type(expr.args[0], layout)
        if expr.name == "nullif" and expr.args:
            return infer_type(expr.args[0], layout)
        entry = SCALAR_FUNCTIONS.get(expr.name)
        if entry is not None:
            return entry[1]
    return VarcharType(None, "text")


def default_name(expr: ast.Expr) -> str:
    """Column name SQL would assign to an unaliased select item."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name
    if isinstance(expr, ast.Cast):
        return default_name(expr.operand)
    if isinstance(expr, ast.CaseExpr):
        return "case"
    return "?column?"
