"""Physical operators in the classic iterator (Volcano) style.

Every operator implements ``rows(ctx)``, a generator of tuples; ``ctx``
is the per-execution context dict (carries ``cq_close`` inside CQs).
The same operators run snapshot queries over tables and per-window
evaluations inside continuous queries — the code reuse the paper calls
out in Section 4.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from repro.types.values import sql_sort_key


class OperatorStats:
    """Per-operator execution counters (attached by :meth:`instrument`).

    ``wall_seconds`` is inclusive time — the operator plus everything
    below it, like Postgres' EXPLAIN ANALYZE "actual time"; time spent
    in the consumer while this generator is suspended is not counted.

    Stats are *sampled*: a CQ arms instrumentation on every Nth window
    via :meth:`Operator.set_timing` and the untimed windows run the
    original uninstrumented iterator, so always-on observability costs
    the hot path nothing.  ``calls`` therefore counts sampled
    executions, the ones ``tuples_out``/``wall_seconds`` cover.
    One-shot EXPLAIN ANALYZE plans stay armed for their whole run.
    """

    __slots__ = ("tuples_out", "calls", "wall_seconds", "batch_rows")

    def __init__(self):
        self.tuples_out = 0
        self.calls = 0
        self.wall_seconds = 0.0
        # rows that flowed through the vectorized (batch) path; stays 0
        # for iterator operators
        self.batch_rows = 0


class Operator:
    """Base class; subclasses yield tuples from :meth:`rows`."""

    #: OperatorStats once instrumented; None on plain plans
    stats: Optional[OperatorStats] = None

    #: execution model; batch operators override with "batch"
    mode = "iterator"

    #: set on every node of a (partially) vectorized plan so EXPLAIN
    #: annotates per-operator modes; plain plans render unchanged
    show_mode = False

    def rows(self, ctx):
        raise NotImplementedError

    def instrument(self) -> None:
        """Wrap this instance's ``rows`` with counters (idempotent).

        Keeps both the plain and the instrumented iterator around so
        :meth:`set_timing` can swap them per evaluation at zero cost to
        the untimed ones.  Starts armed.
        """
        if self.stats is not None:
            return
        self.stats = st = OperatorStats()
        inner = self._rows_plain = self.rows

        def rows(ctx, _inner=inner, _st=st, _pc=time.perf_counter):
            _st.calls += 1
            t0 = _pc()
            for row in _inner(ctx):
                _st.wall_seconds += _pc() - t0
                _st.tuples_out += 1
                yield row
                t0 = _pc()
            _st.wall_seconds += _pc() - t0

        self._rows_timed = rows
        self.rows = rows

    def set_timing(self, active: bool) -> None:
        """Choose the instrumented or the plain iterator for coming
        executions (no-op on uninstrumented operators)."""
        if self.stats is not None:
            self.rows = self._rows_timed if active else self._rows_plain

    def explain(self, depth: int = 0, analyze: bool = False) -> str:
        """A one-line-per-node plan rendering (for tests and debugging).

        With ``analyze`` each node carries the stats accumulated so far
        by its instrumented iterator.
        """
        line = "  " * depth + self._describe()
        if analyze:
            st = self.stats
            if st is None or st.calls == 0:
                line += " (never executed)"
            else:
                line += (f" (actual rows={st.tuples_out} loops={st.calls}"
                         f" time={st.wall_seconds * 1000.0:.3f} ms)")
        if self.show_mode:
            line += f" [mode={self.mode}]"
        lines = [line]
        for child in self._children():
            lines.append(child.explain(depth + 1, analyze))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self):
        return []


class RowSource(Operator):
    """Rows from a Python sequence or factory (window relations, VALUES)."""

    def __init__(self, source, label: str = "rows"):
        # ``source`` is a list of tuples or a zero-arg callable returning one
        self._source = source
        self._label = label

    def rows(self, ctx):
        source = self._source
        if callable(source):
            source = source()
        yield from source

    def _describe(self):
        return f"RowSource({self._label})"


class SeqScan(Operator):
    """Full scan of an MVCC table under a snapshot resolved at run time.

    ``snapshot_fn`` is called when execution starts; inside a CQ it
    returns the window-consistent snapshot (Section 4 of the paper),
    outside it returns the statement snapshot.
    """

    def __init__(self, table, snapshot_fn: Callable, manager,
                 own_txid_fn: Optional[Callable] = None):
        self.table = table
        self._snapshot_fn = snapshot_fn
        self._manager = manager
        self._own_txid_fn = own_txid_fn

    def rows(self, ctx):
        snapshot = self._snapshot_fn()
        own = self._own_txid_fn() if self._own_txid_fn else None
        for _rid, values in self.table.scan(snapshot, self._manager, own):
            yield values

    def _describe(self):
        return f"SeqScan({self.table.name}, ~{self.table.heap.row_count} rows)"


class IndexScan(Operator):
    """B+tree lookup: equality or range, with MVCC visibility re-check."""

    def __init__(self, table, index, snapshot_fn: Callable, manager,
                 equal_fn: Optional[Callable] = None,
                 range_fn: Optional[Callable] = None,
                 own_txid_fn: Optional[Callable] = None):
        # equal_fn(ctx) -> key tuple; range_fn(ctx) -> (lo, hi, lo_inc, hi_inc)
        self.table = table
        self.index = index
        self._snapshot_fn = snapshot_fn
        self._manager = manager
        self._equal_fn = equal_fn
        self._range_fn = range_fn
        self._own_txid_fn = own_txid_fn

    def rows(self, ctx):
        snapshot = self._snapshot_fn()
        own = self._own_txid_fn() if self._own_txid_fn else None
        if self._equal_fn is not None:
            key = self._equal_fn(ctx)
            if any(v is None for v in key):
                return  # NULL never matches an equality key
            rids = self.index.search(key)
        else:
            low, high, low_inc, high_inc = self._range_fn(ctx)
            rids = self.index.range_scan(low, high, low_inc, high_inc)
        # NULL keys sort last in the tree, so an unbounded-high range
        # would sweep them up; SQL comparisons never match NULL
        key_positions = [
            self.table.schema.index_of(name)
            for name in self.index.column_names
        ]
        for rid in rids:
            values = self.table.fetch(rid, snapshot, self._manager, own)
            if values is None:
                continue
            if any(values[p] is None for p in key_positions):
                continue
            yield values

    def _describe(self):
        kind = "eq" if self._equal_fn else "range"
        return f"IndexScan({self.table.name} via {self.index.name}, {kind})"


class Filter(Operator):
    """WHERE/HAVING: keeps rows whose predicate is strictly true."""

    def __init__(self, child: Operator, predicate: Callable):
        self.child = child
        self._predicate = predicate

    def rows(self, ctx):
        predicate = self._predicate
        for row in self.child.rows(ctx):
            if predicate(row, ctx) is True:
                yield row

    def _children(self):
        return [self.child]


class Project(Operator):
    """Compute the output expressions for each input row."""

    def __init__(self, child: Operator, exprs: Sequence[Callable]):
        self.child = child
        self._exprs = list(exprs)

    def rows(self, ctx):
        exprs = self._exprs
        for row in self.child.rows(ctx):
            yield tuple(e(row, ctx) for e in exprs)

    def _children(self):
        return [self.child]


class NestedLoopJoin(Operator):
    """Inner/left join with an arbitrary predicate (right side cached)."""

    def __init__(self, left: Operator, right: Operator,
                 predicate: Optional[Callable], kind: str, right_width: int):
        self.left = left
        self.right = right
        self._predicate = predicate
        self.kind = kind
        self._right_width = right_width

    def rows(self, ctx):
        right_rows = list(self.right.rows(ctx))
        predicate = self._predicate
        null_pad = (None,) * self._right_width
        for left_row in self.left.rows(ctx):
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate is None or predicate(combined, ctx) is True:
                    matched = True
                    yield combined
            if not matched and self.kind == "LEFT":
                yield left_row + null_pad

    def _children(self):
        return [self.left, self.right]

    def _describe(self):
        return f"NestedLoopJoin({self.kind})"


class HashJoin(Operator):
    """Equi-join.  By default the right input is the build side; with
    ``build_left=True`` (chosen by the planner when the left side is
    estimated smaller — e.g. a window relation joining a big table) the
    left input is hashed and the right probes it.  Output column order is
    always left ++ right either way."""

    def __init__(self, left: Operator, right: Operator,
                 left_keys: Sequence[Callable], right_keys: Sequence[Callable],
                 kind: str, right_width: int,
                 residual: Optional[Callable] = None,
                 build_left: bool = False):
        self.left = left
        self.right = right
        self._left_keys = list(left_keys)
        self._right_keys = list(right_keys)
        self.kind = kind
        self._right_width = right_width
        self._residual = residual
        self.build_left = build_left

    def rows(self, ctx):
        if self.build_left:
            yield from self._rows_build_left(ctx)
        else:
            yield from self._rows_build_right(ctx)

    def _rows_build_right(self, ctx):
        build = {}
        for right_row in self.right.rows(ctx):
            key = tuple(k(right_row, ctx) for k in self._right_keys)
            if any(v is None for v in key):
                continue  # NULL keys never join
            build.setdefault(key, []).append(right_row)
        null_pad = (None,) * self._right_width
        residual = self._residual
        for left_row in self.left.rows(ctx):
            key = tuple(k(left_row, ctx) for k in self._left_keys)
            matched = False
            if not any(v is None for v in key):
                for right_row in build.get(key, ()):
                    combined = left_row + right_row
                    if residual is None or residual(combined, ctx) is True:
                        matched = True
                        yield combined
            if not matched and self.kind == "LEFT":
                yield left_row + null_pad

    def _rows_build_left(self, ctx):
        # build on the left; entries carry a matched flag so LEFT joins
        # can null-extend the untouched ones afterwards
        build = {}
        unmatchable = []  # left rows with NULL keys (LEFT join only)
        for left_row in self.left.rows(ctx):
            key = tuple(k(left_row, ctx) for k in self._left_keys)
            if any(v is None for v in key):
                unmatchable.append(left_row)
                continue
            build.setdefault(key, []).append([left_row, False])
        residual = self._residual
        for right_row in self.right.rows(ctx):
            key = tuple(k(right_row, ctx) for k in self._right_keys)
            if any(v is None for v in key):
                continue
            for entry in build.get(key, ()):
                combined = entry[0] + right_row
                if residual is None or residual(combined, ctx) is True:
                    entry[1] = True
                    yield combined
        if self.kind == "LEFT":
            null_pad = (None,) * self._right_width
            for entries in build.values():
                for left_row, matched in entries:
                    if not matched:
                        yield left_row + null_pad
            for left_row in unmatchable:
                yield left_row + null_pad

    def _children(self):
        return [self.left, self.right]

    def _describe(self):
        side = "build=left" if self.build_left else "build=right"
        return f"HashJoin({self.kind}, {len(self._left_keys)} keys, {side})"


class HashAggregate(Operator):
    """GROUP BY via a hash table; output = group keys ++ aggregate results.

    ``agg_specs`` is a list of ``(Aggregate, arg_fn | None)``; a None
    arg_fn means ``count(*)``.  With no group keys, exactly one output
    row is produced even over empty input (scalar-aggregate semantics).

    Like :class:`repro.exec.batch_ops.BatchAggregate` it exposes the
    mergeable-partial protocol (``accumulate`` / ``merge_partials`` /
    ``finalize`` / ``set_merged``) so partitioned and sliced execution
    work on the iterator path too.  Groups are emitted in first-seen
    order.
    """

    def __init__(self, child: Operator, group_exprs: Sequence[Callable],
                 agg_specs):
        self.child = child
        self._group_exprs = list(group_exprs)
        self._agg_specs = list(agg_specs)
        self._merged = None

    def rows(self, ctx):
        if self._merged is not None:
            yield from self._merged
            return
        yield from self.finalize(self.accumulate(ctx))

    def set_merged(self, rows) -> None:
        self._merged = rows

    # -- partial aggregation (mirrors BatchAggregate) -----------------------

    def accumulate(self, ctx) -> dict:
        """Aggregate the child's rows into a partial-state dict."""
        groups: dict = {}
        group_exprs = self._group_exprs
        specs = self._agg_specs
        for row in self.child.rows(ctx):
            key = tuple(e(row, ctx) for e in group_exprs)
            states = groups.get(key)
            if states is None:
                states = [agg.create() for agg, _ in specs]
                groups[key] = states
            for i, (agg, arg_fn) in enumerate(specs):
                value = arg_fn(row, ctx) if arg_fn is not None else None
                states[i] = agg.add(states[i], value)
        return groups

    def merge_partials(self, partials) -> dict:
        specs = self._agg_specs
        merged: dict = {}
        for part in partials:
            for key, states in part.items():
                current = merged.get(key)
                if current is None:
                    # copy the state lists: partials are reused across
                    # overlapping windows and must never be mutated
                    merged[key] = list(states)
                else:
                    merged[key] = [
                        agg.merge(a, b)
                        for (agg, _), a, b in zip(specs, current, states)
                    ]
        return merged

    def finalize(self, groups: dict):
        specs = self._agg_specs
        if not groups and not self._group_exprs:
            groups = {(): [agg.create() for agg, _ in specs]}
        return [
            key + tuple(agg.result(state)
                        for (agg, _), state in zip(specs, states))
            for key, states in groups.items()
        ]

    def _children(self):
        return [self.child]

    def _describe(self):
        return (f"HashAggregate({len(self._group_exprs)} keys, "
                f"{len(self._agg_specs)} aggs)")


class Sort(Operator):
    """ORDER BY: full in-memory sort, NULLS LAST ascending."""

    def __init__(self, child: Operator, key_fns: Sequence[Callable],
                 descending: Sequence[bool]):
        self.child = child
        self._key_fns = list(key_fns)
        self._descending = list(descending)

    def rows(self, ctx):
        materialised = list(self.child.rows(ctx))
        # stable multi-key sort: apply keys right-to-left
        for key_fn, desc in reversed(list(zip(self._key_fns, self._descending))):
            materialised.sort(
                key=lambda row, f=key_fn: sql_sort_key(f(row, ctx)),
                reverse=desc,
            )
        yield from materialised

    def _children(self):
        return [self.child]


class Limit(Operator):
    """LIMIT/OFFSET."""

    def __init__(self, child: Operator, limit: Optional[int],
                 offset: Optional[int]):
        self.child = child
        self._limit = limit
        self._offset = offset or 0

    def rows(self, ctx):
        if self._limit is not None and self._limit <= 0:
            return
        produced = 0
        skipped = 0
        for row in self.child.rows(ctx):
            if skipped < self._offset:
                skipped += 1
                continue
            produced += 1
            yield row
            if self._limit is not None and produced >= self._limit:
                return  # stop before pulling another row from the child

    def _children(self):
        return [self.child]

    def _describe(self):
        return f"Limit({self._limit}, offset={self._offset})"


class Distinct(Operator):
    """SELECT DISTINCT via a seen-set."""

    def __init__(self, child: Operator):
        self.child = child

    def rows(self, ctx):
        seen = set()
        for row in self.child.rows(ctx):
            if row not in seen:
                seen.add(row)
                yield row

    def _children(self):
        return [self.child]


class Concat(Operator):
    """UNION ALL: left's rows followed by right's."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def rows(self, ctx):
        yield from self.left.rows(ctx)
        yield from self.right.rows(ctx)

    def _children(self):
        return [self.left, self.right]


class Except(Operator):
    """EXCEPT [ALL]: rows of left not in right.

    Set form removes duplicates; ALL form is bag difference (each right
    occurrence cancels one left occurrence).
    """

    def __init__(self, left: Operator, right: Operator, all_rows: bool):
        self.left = left
        self.right = right
        self.all_rows = all_rows

    def rows(self, ctx):
        counts = {}
        for row in self.right.rows(ctx):
            counts[row] = counts.get(row, 0) + 1
        if self.all_rows:
            for row in self.left.rows(ctx):
                remaining = counts.get(row, 0)
                if remaining > 0:
                    counts[row] = remaining - 1
                else:
                    yield row
        else:
            emitted = set()
            for row in self.left.rows(ctx):
                if row not in counts and row not in emitted:
                    emitted.add(row)
                    yield row

    def _children(self):
        return [self.left, self.right]

    def _describe(self):
        return f"Except(all={self.all_rows})"


class Intersect(Operator):
    """INTERSECT [ALL]: rows present in both inputs."""

    def __init__(self, left: Operator, right: Operator, all_rows: bool):
        self.left = left
        self.right = right
        self.all_rows = all_rows

    def rows(self, ctx):
        counts = {}
        for row in self.right.rows(ctx):
            counts[row] = counts.get(row, 0) + 1
        if self.all_rows:
            for row in self.left.rows(ctx):
                remaining = counts.get(row, 0)
                if remaining > 0:
                    counts[row] = remaining - 1
                    yield row
        else:
            emitted = set()
            for row in self.left.rows(ctx):
                if row in counts and row not in emitted:
                    emitted.add(row)
                    yield row

    def _children(self):
        return [self.left, self.right]

    def _describe(self):
        return f"Intersect(all={self.all_rows})"
