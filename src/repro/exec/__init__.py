"""The relational executor: iterator-style operators, an expression
compiler, aggregate functions, and a rule-based planner.

Exactly as the paper argues (Section 4), these "standard, well understood,
iterator-style relational query operators" are reused unchanged by the
streaming engine: a CQ plan applies the same operators to each window's
relation.
"""

from repro.exec.expressions import compile_expr, infer_type
from repro.exec.planner import Planner, PlanContext
from repro.exec import operators

__all__ = ["compile_expr", "infer_type", "Planner", "PlanContext", "operators"]
