"""Plan conversion pass: iterator operators -> batch operators.

Runs on a freshly-built CQ plan (never on snapshot plans).  Conversion
is bottom-up and *per-operator*: each Filter / Project / HashAggregate
whose expressions have numpy kernels and whose child converted becomes
its batch twin; anything else keeps the iterator implementation and
pulls rows from the batch subtree through the ``rows()`` bridge (mixed
mode).  A bare converted source under an iterator parent is demoted
back — batching rows just to unbatch them buys nothing.

The planner attaches the conversion inputs at plan build time:

- ``RowSource.vector_source`` — ``(fetch, types, label, is_stream)``,
  set by the CQ's source resolver for window relations;
- ``Filter.vector_info`` — ``(predicate_ast, layout)``;
- ``Project.vector_info`` — ``(item_asts, layout)``;
- ``HashAggregate.vector_info`` — ``(group_exprs, agg_calls, layout)``.
"""
from __future__ import annotations

from typing import Tuple

from repro.exec import batch_ops, operators as ops
from repro.exec.columnar import HAS_NUMPY
from repro.exec.vector import NotVectorizable, compile_batch_expr, expr_family
from repro.sql import ast

#: aggregate functions with a vectorized partial implementation;
#: everything else (count distinct, median, stddev, bool_and, ...)
#: keeps the iterator HashAggregate — the documented mixed-mode case
VECTOR_AGG_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def walk(root: ops.Operator):
    stack = [root]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(op._children())


def vectorize_plan(root: ops.Operator) -> Tuple[ops.Operator, bool]:
    """Return (new_root, changed); identity when numpy is unavailable."""
    if not HAS_NUMPY:
        return root, False
    new_root = _demote(_convert(root))
    changed = any(
        isinstance(op, (batch_ops.BatchOperator, batch_ops.BatchAggregate))
        for op in walk(new_root)
    )
    if changed:
        # EXPLAIN annotates every node of a (partially) vectorized plan
        # with its mode; untouched plans render exactly as before
        for op in walk(new_root):
            op.show_mode = True
    return new_root, changed


def _demote(node: ops.Operator) -> ops.Operator:
    """Under an iterator parent a bare BatchSource is pure overhead."""
    if isinstance(node, batch_ops.BatchSource):
        return node.fallback
    return node


def _convert(op: ops.Operator) -> ops.Operator:
    if isinstance(op, ops.RowSource):
        info = getattr(op, "vector_source", None)
        if info is not None:
            fetch, types, label, is_stream = info
            return batch_ops.BatchSource(fetch, types, label, op, is_stream)
        return op

    if isinstance(op, ops.Filter):
        child = _convert(op.child)
        info = getattr(op, "vector_info", None)
        if info is not None and isinstance(child, batch_ops.BatchOperator):
            predicate, layout = info
            flags = {"context": False}
            try:
                # Filter keeps rows whose predicate `is True`; only a
                # genuinely boolean kernel reproduces that
                if expr_family(predicate, layout) != "bool":
                    raise NotVectorizable("non-boolean predicate")
                kernel = compile_batch_expr(predicate, layout, flags)
            except NotVectorizable:
                op.child = _demote(child)
                return op
            return batch_ops.BatchFilter(child, kernel, flags["context"])
        op.child = _demote(child)
        return op

    if isinstance(op, ops.Project):
        child = _convert(op.child)
        info = getattr(op, "vector_info", None)
        # projections over a BatchAggregate stay in iterator mode: the
        # aggregate output is a handful of rows per window, where batch
        # construction costs more than it saves
        if info is not None and isinstance(child, batch_ops.BatchOperator):
            item_exprs, layout = info
            flags = {"context": False}
            try:
                kernels = [compile_batch_expr(e, layout, flags)
                           for e in item_exprs]
            except NotVectorizable:
                op.child = _demote(child)
                return op
            return batch_ops.BatchProject(child, kernels, flags["context"])
        op.child = _demote(child)
        return op

    if isinstance(op, ops.HashAggregate):
        child = _convert(op.child)
        info = getattr(op, "vector_info", None)
        if info is not None and isinstance(child, batch_ops.BatchOperator):
            converted = _convert_aggregate(op, child, info)
            if converted is not None:
                return converted
        op.child = _demote(child)
        return op

    # every other operator stays as-is; recurse into its inputs
    for attr in ("child", "left", "right"):
        node = getattr(op, attr, None)
        if isinstance(node, ops.Operator):
            setattr(op, attr, _demote(_convert(node)))
    return op


def _convert_aggregate(op: ops.HashAggregate, child, info):
    group_exprs, agg_calls, layout = info
    if len(group_exprs) > 1:
        # multi-key grouping falls back to the iterator HashAggregate
        return None
    flags = {"context": False}
    try:
        group_kernel = (compile_batch_expr(group_exprs[0], layout, flags)
                        if group_exprs else None)
        vector_aggs = []
        for call in agg_calls:
            name = call.name.lower()
            if call.distinct:
                raise NotVectorizable("DISTINCT aggregate")
            star = bool(call.args) and isinstance(call.args[0], ast.Star)
            if star or not call.args:
                if name != "count":
                    raise NotVectorizable(name)
                vector_aggs.append(batch_ops.VectorAgg("count_star", None))
                continue
            if name not in VECTOR_AGG_NAMES:
                raise NotVectorizable(name)
            arg = call.args[0]
            if name != "count" and expr_family(arg, layout) != "num":
                # sum/avg/min/max kernels reduce numeric lanes only
                # (count(x) just needs the null mask, any type goes)
                raise NotVectorizable(f"{name} over non-numeric argument")
            arg_kernel = compile_batch_expr(arg, layout, flags)
            vector_aggs.append(batch_ops.VectorAgg(name, arg_kernel))
    except NotVectorizable:
        return None
    return batch_ops.BatchAggregate(
        child, group_kernel, vector_aggs,
        op._group_exprs, op._agg_specs, flags["context"])
