"""Exception hierarchy for the stream-relational engine.

Every error raised by the public API derives from :class:`TruvisoError` so
applications can catch one base class.  The hierarchy mirrors the layers of
the system: parsing, catalog, planning, execution, storage, transactions,
and the streaming runtime.
"""

from __future__ import annotations


class TruvisoError(Exception):
    """Base class for every error raised by the engine."""


class SQLError(TruvisoError):
    """Base class for errors in the SQL front end."""


class LexerError(SQLError):
    """Raised when the input text cannot be tokenized.

    Carries the offending position so callers can point at the source.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class ParseError(SQLError):
    """Raised when a token stream does not form a valid statement."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class TypeError_(TruvisoError):
    """Raised on type mismatches during analysis or expression evaluation.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CatalogError(TruvisoError):
    """Raised for missing/duplicate catalog objects (tables, streams...)."""


class DuplicateObjectError(CatalogError):
    """An object with the same name already exists."""


class UnknownObjectError(CatalogError):
    """The named table/stream/view/channel/index does not exist."""


class PlanningError(TruvisoError):
    """Raised when a parsed statement cannot be turned into a plan."""


class BindError(PlanningError):
    """A name in the query could not be resolved against the catalog."""


class ExecutionError(TruvisoError):
    """Raised during query execution."""


class ConstraintError(ExecutionError):
    """A NOT NULL / type-width constraint was violated."""


class StorageError(TruvisoError):
    """Base class for storage-engine failures."""


class PageFullError(StorageError):
    """No room left in a slotted page for the requested insert."""


class WALError(StorageError):
    """The write-ahead log is corrupt or cannot be replayed."""


class TransactionError(TruvisoError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (deadlock, explicit abort...)."""


class SerializationError(TransactionError):
    """A concurrent update conflicted under the snapshot rules."""


class StreamingError(TruvisoError):
    """Base class for streaming-runtime failures."""


class OutOfOrderError(StreamingError):
    """A tuple arrived with an event time before the stream's watermark."""


class WindowError(StreamingError):
    """An invalid window specification (e.g. advance > visible with gaps)."""


class RecoveryError(StreamingError):
    """Runtime state could not be rebuilt after a crash."""


class BackpressureError(StreamingError):
    """A stream's reorder buffer hit its high-water mark under the
    ``raise`` backpressure policy."""


class PartitionError(StreamingError):
    """A CQ or stream cannot run on the partitioned engine (unsupported
    plan shape, missing partition key, bad worker configuration)."""


class WorkerDiedError(StreamingError):
    """A partition worker process died mid-exchange; the coordinator
    restarts it with replay and retries."""


class NetworkError(TruvisoError):
    """Base class for client/server wire-boundary failures."""


class ProtocolError(NetworkError):
    """A malformed, oversized or out-of-sequence protocol frame."""


class ConnectionTimeoutError(NetworkError):
    """A client connection attempt did not complete within its deadline.

    Covers both the TCP connect and the hello handshake; carries the
    target so failover loops can report which host timed out.
    """

    def __init__(self, message: str, host: str = "", port: int = 0):
        super().__init__(message)
        self.host = host
        self.port = port


class ReplicationError(NetworkError):
    """WAL shipping or standby apply failed (gap, bad record, bad role)."""


class ReplicationGapError(ReplicationError):
    """The requested WAL range is no longer retained anywhere reachable.

    Raised by ``WriteAheadLog.records_from`` when ``from_lsn`` predates
    the records still held in memory, and by the archive fetch path when
    even the archived segments cannot cover the range.  Carries the
    missing range as structured fields so the primary's attach path can
    consume it (serve the archive instead) and so a standby that does
    hit it logs exactly which LSNs are unrecoverable.  The server ships
    both bounds over the wire so a remote client rebuilds this same
    typed error.
    """

    def __init__(self, message: str, missing_from: int = 0,
                 missing_to: int = 0):
        super().__init__(message)
        self.missing_from = missing_from
        self.missing_to = missing_to


class AdmissionError(TruvisoError):
    """A request was refused by admission control (quota, rate limit,
    or overload shedding) — the request was *not* applied.

    ``retry_after_ms`` is the throttle hint: a number means the refusal
    is transient (token bucket refilling, engine overloaded) and the
    client may retry after that long; ``None`` means the refusal is
    durable (a cumulative quota is exhausted) and retrying is pointless.
    The server ships both fields over the wire so a remote client
    rebuilds this same typed error.
    """

    def __init__(self, message: str, retry_after_ms=None,
                 tenant: str = "", reason: str = ""):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.tenant = tenant
        self.reason = reason

    @property
    def retryable(self) -> bool:
        return self.retry_after_ms is not None


class RemoteError(NetworkError):
    """An engine error reported by the server over the wire.

    ``remote_type`` carries the server-side exception class name so
    clients can branch on it without importing engine internals.
    """

    def __init__(self, message: str, remote_type: str = "TruvisoError"):
        super().__init__(message)
        self.remote_type = remote_type


class FaultInjected(TruvisoError):
    """A deterministic fault fired at an armed crashpoint.

    Raised only by :mod:`repro.faults`; carries the crashpoint name so
    supervisors and tests can attribute the failure to its site.
    """

    def __init__(self, message: str, crashpoint: str = ""):
        super().__init__(message)
        self.crashpoint = crashpoint
