"""Multi-version concurrency control.

Versions carry ``xmin``/``xmax`` transaction ids; a :class:`Snapshot`
captures the set of transactions whose effects are visible.  This is the
isolation substrate the paper says can be "extended to provide continuous
isolation semantics" (Section 4) — the extension itself lives in
:mod:`repro.txn.window_consistency`.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import TransactionError
from repro.storage.page import RowVersion

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class Snapshot:
    """A point-in-time visibility horizon.

    A transaction is visible when it committed before this snapshot was
    taken: its id is below ``horizon`` and it was not in-progress at that
    moment.
    """

    __slots__ = ("horizon", "in_progress")

    def __init__(self, horizon: int, in_progress: frozenset):
        self.horizon = horizon
        self.in_progress = in_progress

    def might_see(self, txid: int) -> bool:
        """Visibility by snapshot position alone (status checked separately)."""
        return txid < self.horizon and txid not in self.in_progress

    def __repr__(self):
        return f"Snapshot(horizon={self.horizon}, in_progress={set(self.in_progress)})"


class Transaction:
    """A running transaction: id, snapshot, and undo information."""

    def __init__(self, txid: int, snapshot: Snapshot, manager: "TransactionManager"):
        self.txid = txid
        self.snapshot = snapshot
        self._manager = manager
        self.status = ACTIVE
        # undo lists for abort: physical cleanup of our own writes
        self.inserted = []  # (table, rid, values)
        self.deleted = []   # (table, rid, version)

    def is_active(self) -> bool:
        return self.status == ACTIVE

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)

    def __repr__(self):
        return f"Transaction({self.txid}, {self.status})"


class TransactionManager:
    """Issues transaction ids, tracks status, takes snapshots."""

    #: txid used for bootstrap rows (always committed, visible to everyone)
    FROZEN_TXID = 0

    def __init__(self, wal=None):
        self.wal = wal
        self._next_txid = 1
        self._status = {self.FROZEN_TXID: COMMITTED}
        self._active: Set[int] = set()

    def begin(self) -> Transaction:
        """Start a transaction with a fresh snapshot."""
        txid = self._next_txid
        self._next_txid += 1
        self._status[txid] = ACTIVE
        snapshot = self.take_snapshot()
        self._active.add(txid)
        return Transaction(txid, snapshot, self)

    def take_snapshot(self) -> Snapshot:
        """A snapshot as of now (excludes all currently-active txns)."""
        return Snapshot(self._next_txid, frozenset(self._active))

    def oldest_visible_horizon(self) -> int:
        """The oldest txid any current or future snapshot could consider
        in-progress; versions deleted by committed transactions below
        this horizon are dead and can be vacuumed."""
        if self._active:
            return min(self._active)
        return self._next_txid

    def is_dead(self, version: RowVersion) -> bool:
        """True when no snapshot can ever see this version again."""
        xmin_status = self._status.get(version.xmin)
        if xmin_status == ABORTED:
            return True
        if version.xmax is None:
            return False
        if self._status.get(version.xmax) != COMMITTED:
            return False
        return version.xmax < self.oldest_visible_horizon()

    def status_of(self, txid: int) -> str:
        return self._status.get(txid, ABORTED)

    def commit(self, txn: Transaction) -> None:
        if txn.status != ACTIVE:
            raise TransactionError(f"cannot commit {txn}")
        if self.wal is not None:
            self.wal.append(txn.txid, "commit")
            self.wal.flush()
        self._status[txn.txid] = COMMITTED
        self._active.discard(txn.txid)
        txn.status = COMMITTED

    def abort(self, txn: Transaction) -> None:
        if txn.status != ACTIVE:
            raise TransactionError(f"cannot abort {txn}")
        # physically undo this transaction's own writes so aborted
        # versions don't accumulate (poor-man's instant vacuum)
        for table, rid, version in reversed(txn.deleted):
            version.xmax = None
            table.on_abort_undelete(rid)
        for table, rid, values in reversed(txn.inserted):
            table.on_abort_remove(rid, values)
        if self.wal is not None:
            self.wal.append(txn.txid, "abort")
        self._status[txn.txid] = ABORTED
        self._active.discard(txn.txid)
        txn.status = ABORTED

    # -- visibility -----------------------------------------------------------

    def visible(self, version: RowVersion, snapshot: Snapshot,
                own_txid: Optional[int] = None) -> bool:
        """Standard MVCC visibility of ``version`` under ``snapshot``."""
        xmin, xmax = version.xmin, version.xmax
        if own_txid is not None and xmin == own_txid:
            created = True
        else:
            created = (snapshot.might_see(xmin)
                       and self._status.get(xmin) == COMMITTED)
        if not created:
            return False
        if xmax is None:
            return True
        if own_txid is not None and xmax == own_txid:
            return False
        deleted = (snapshot.might_see(xmax)
                   and self._status.get(xmax) == COMMITTED)
        return not deleted
