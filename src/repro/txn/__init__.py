"""Transactions: MVCC snapshots, the transaction manager, and the
paper's *window consistency* extension (Section 4) under which a CQ sees
table updates only at window boundaries.
"""

from repro.txn.mvcc import Snapshot, Transaction, TransactionManager
from repro.txn.window_consistency import WindowConsistentView

__all__ = [
    "Snapshot",
    "Transaction",
    "TransactionManager",
    "WindowConsistentView",
]
