"""Window consistency: the paper's continuous-isolation semantics.

Section 4: "a notion of window consistency ... ensures that updates to
tables are visible only on window boundaries".  A long-running CQ holds a
:class:`WindowConsistentView`; every table access inside the CQ reads
through the view's current snapshot, and the streaming runtime calls
:meth:`WindowConsistentView.refresh` exactly when a window closes.  Table
commits that land mid-window therefore become visible together, at the
next boundary — never halfway through producing one window's output.
"""

from __future__ import annotations

from repro.txn.mvcc import Snapshot, TransactionManager


class WindowConsistentView:
    """A snapshot holder refreshed only at window boundaries."""

    def __init__(self, manager: TransactionManager):
        self._manager = manager
        self._snapshot = manager.take_snapshot()
        self.refresh_count = 0

    @property
    def snapshot(self) -> Snapshot:
        """The snapshot CQ table-reads must use right now."""
        return self._snapshot

    def refresh(self) -> Snapshot:
        """Advance to a fresh snapshot (call on window close only)."""
        self._snapshot = self._manager.take_snapshot()
        self.refresh_count += 1
        return self._snapshot
