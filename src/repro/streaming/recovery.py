"""Recovery of CQ runtime state after a crash (the paper's Section 4).

"Unlike a traditional RDBMS ... a Stream-Relational system needs to
recover runtime state as well as durable state."  Two strategies are
implemented, exactly the two the paper contrasts:

- :class:`CheckpointManager` — "periodically checkpoint the internal
  state of the various CQ operators".  Pays WAL I/O on every checkpoint
  during normal operation; recovery reads the latest checkpoint and
  replays the stream tail after it.

- :func:`recover_from_active_table` — the paper's preferred strategy:
  "rebuild runtime state from disk automatically" using the Active Table
  the CQ was already maintaining.  No extra I/O during normal operation;
  recovery reads the archive's high-water mark and replays just enough of
  the stream tail to rebuild the in-flight window.

Both assume the stream source retains a replayable tail (``retention`` on
the stream), standing in for the message broker a production deployment
would re-read.  Experiment E8 measures the trade: steady-state overhead
vs recovery I/O, with identical post-recovery output.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RecoveryError
from repro.streaming.cq import ContinuousQuery
from repro.streaming.windows import TimeWindowOperator


def capture_window_state(cq: ContinuousQuery) -> dict:
    """Serialize a CQ's window-operator state (plain data, no pickling).

    The replay point is derived from the *buffer*, not the stream's
    watermark: the tuple whose arrival triggered the current window close
    has already advanced the watermark but is not yet buffered, and must
    be replayed after a crash.
    """
    op = cq._window_op
    if not isinstance(op, TimeWindowOperator):
        raise RecoveryError(
            "checkpointing is implemented for time-window CQs")
    if op._buffer:
        replay_after = max(when for when, _row in op._buffer)
        replay_from = None
    else:
        replay_after = None
        if op._base is not None:
            # everything at/after the eviction horizon would be buffered
            replay_from = (op._base + op._boundary_index * op.advance
                           - op.visible)
        else:
            replay_from = float("-inf")
    return {
        "buffer": [(when, list(row)) for when, row in op._buffer],
        "base": op._base,
        "boundary_index": op._boundary_index,
        "replay_after": replay_after,
        "replay_from": replay_from,
        "last_close": cq.stats.last_close,
    }


def restore_window_state(cq: ContinuousQuery, state: dict) -> None:
    """Install a captured state into a freshly-built CQ."""
    op = cq._window_op
    if not isinstance(op, TimeWindowOperator):
        raise RecoveryError(
            "checkpoint restore needs a time-window CQ")
    op._buffer.clear()
    for when, row in state["buffer"]:
        op._buffer.append((when, tuple(row)))
    op._base = state["base"]
    op._boundary_index = state["boundary_index"]
    # sliced operators re-derive their per-slice aggregate partials
    # from the restored buffer (the checkpoint stays plain data)
    rebuild = getattr(op, "rebuild_slices", None)
    if rebuild is not None:
        rebuild()


class CheckpointManager:
    """Checkpoint a CQ's operator state to the WAL every N windows."""

    def __init__(self, cq: ContinuousQuery, wal, every_windows: int = 1):
        self.cq = cq
        self.wal = wal
        self.every_windows = max(1, every_windows)
        self.checkpoints_taken = 0
        self._windows_since = 0
        cq.add_sink(self._on_window)

    def _on_window(self, rows, open_time, close_time) -> None:
        self._windows_since += 1
        if self._windows_since < self.every_windows:
            return
        self._windows_since = 0
        payload = capture_window_state(self.cq)
        payload["close_time"] = close_time
        # checkpoint records are durability-critical: force them out,
        # paying the I/O the paper says this strategy costs
        self.wal.append(0, "cq_checkpoint", self.cq.name, payload=payload)
        self.wal.flush()
        self.checkpoints_taken += 1

    @staticmethod
    def recover(new_cq: ContinuousQuery, wal,
                suppress_duplicates: bool = True) -> float:
        """Restore ``new_cq`` from the latest checkpoint and replay the
        stream tail after it.  Returns the replay start time.

        The caller attaches ``new_cq`` *after* this returns.
        """
        payload = wal.latest_checkpoint(new_cq.name)
        if payload is None:
            raise RecoveryError(
                f"no checkpoint found for CQ {new_cq.name!r}")
        restore_window_state(new_cq, payload)
        last_close = payload.get("close_time")
        if suppress_duplicates and last_close is not None:
            _suppress_through(new_cq, last_close)
        replay_after = payload.get("replay_after")
        if replay_after is not None:
            start = replay_after
            exclusive = True
        else:
            start = payload.get("replay_from", float("-inf"))
            exclusive = False
        stream = new_cq.stream
        if start == float("-inf"):
            start = stream.replay_horizon()
            if start == float("inf"):
                return start  # nothing retained, nothing to replay
        else:
            _check_replayable(stream, start)
        target = new_cq._window_op
        for when, row in stream.replay_since(start):
            if exclusive and when <= replay_after:
                continue
            target.on_tuple(row, when)
        return start


def recover_from_active_table(new_cq: ContinuousQuery, table, txn_manager,
                              stime_column: str,
                              suppress_duplicates: bool = True
                              ) -> Optional[float]:
    """The paper's strategy: rebuild CQ state from its Active Table.

    Reads the archive's maximum window-close timestamp, aligns the fresh
    CQ's window grid to it, and replays the stream tail that overlaps the
    first unfinished window.  Returns the replay start time (None when
    the archive is empty and the CQ simply starts cold).
    """
    op = new_cq._window_op
    if not isinstance(op, TimeWindowOperator):
        raise RecoveryError(
            "active-table recovery is implemented for time-window CQs")

    snapshot = txn_manager.take_snapshot()
    position = table.schema.index_of(stime_column)
    last_close = None
    for _rid, values in table.scan(snapshot, txn_manager):
        stime = values[position]
        if stime is not None and (last_close is None or stime > last_close):
            last_close = stime
    if last_close is None:
        return None

    # align the window grid: the next window closes at last_close + advance
    op._base = last_close
    op._boundary_index = 1

    if suppress_duplicates:
        _suppress_through(new_cq, last_close)

    # tuples contributing to the next window lie in
    # [last_close + advance - visible, last_close + advance)
    replay_from = last_close + op.advance - op.visible
    stream = new_cq.stream
    _check_replayable(stream, replay_from)
    for when, row in stream.replay_since(replay_from):
        op.on_tuple(row, when)
    return replay_from


def _suppress_through(cq: ContinuousQuery, last_close: float) -> None:
    """Wrap the CQ's emission so windows already produced are dropped."""
    op = cq._window_op
    if op is None:
        return
    # wrap the operator's live sink (plain windows use _on_window,
    # sliced windows _on_sliced_window) rather than assuming one
    original = op.sink

    def guarded(rows, open_time, close_time):
        if close_time > last_close + 1e-9:
            original(rows, open_time, close_time)
    op.sink = guarded


def _check_replayable(stream, replay_from: float) -> None:
    horizon = stream.replay_horizon()
    if horizon > replay_from and horizon != float("inf") \
            and stream.watermark >= replay_from:
        # data that should be replayed has already been evicted
        if horizon > replay_from + 1e-9:
            raise RecoveryError(
                f"stream {stream.name!r} retention does not cover the "
                f"replay window (need {replay_from}, have {horizon})"
            )
