"""Channels: persistence for streams (the paper's Example 4).

A channel subscribes to a derived stream and stores each window's result
into an ordinary SQL table — the *active table*.  APPEND adds each
result; REPLACE overwrites the previous one.  Each window's result is
applied in its own transaction, so snapshot queries over the active table
see whole windows or nothing (this is the flip side of window
consistency).

"the combination of Derived Streams with Active Tables can be viewed as
an extremely efficient materialized view mechanism" — Section 3.3.
Experiment E5 quantifies that comparison against batch-refresh MVs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConstraintError, StreamingError

APPEND = "append"
REPLACE = "replace"


@dataclass
class ChannelStats:
    batches: int = 0
    rows_written: int = 0
    rows_replaced: int = 0
    write_failures: int = 0
    last_close: float = None


class Channel:
    """CREATE CHANNEL name FROM derived_stream INTO table APPEND|REPLACE."""

    def __init__(self, name: str, source, table, txn_manager,
                 mode: str = APPEND):
        if mode not in (APPEND, REPLACE):
            raise StreamingError(f"unknown channel mode {mode!r}")
        if len(table.schema) != len(source.schema):
            raise ConstraintError(
                f"channel {name!r}: stream produces {len(source.schema)} "
                f"columns but table {table.name!r} has {len(table.schema)}"
            )
        self.name = name
        self.source = source
        self.table = table
        self.mode = mode
        self._txn_manager = txn_manager
        self.stats = ChannelStats()
        self._attached = False
        self.faults = None  # optional FaultInjector (channel.write)
        self.flush_timer = None  # obs histogram timing each window write

    def attach(self) -> None:
        if not self._attached:
            self.source.subscribe(self)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.source.unsubscribe(self)
            self._attached = False

    # -- consumer protocol ----------------------------------------------------

    def on_batch(self, rows, open_time: float, close_time: float) -> None:
        """Store one window's result transactionally."""
        if self.faults is not None:
            try:
                self.faults.check("channel.write", self.name)
            except Exception:
                self.stats.write_failures += 1
                raise
        timer = self.flush_timer
        started = time.perf_counter() if timer is not None else 0.0
        txn = self._txn_manager.begin()
        try:
            if self.mode == REPLACE:
                before = self.table.row_count(txn.snapshot, self._txn_manager)
                self.table.truncate(txn)
                self.stats.rows_replaced += before
            for row in rows:
                self.table.insert(txn, row)
            txn.commit()
        except Exception:
            self.stats.write_failures += 1
            if txn.is_active():
                txn.abort()
            raise
        self.stats.batches += 1
        self.stats.rows_written += len(rows)
        self.stats.last_close = close_time
        if timer is not None:
            timer.observe(time.perf_counter() - started)

    def on_correction(self, kind: str, rows, open_time: float,
                      close_time: float) -> None:
        """A typed event-time record (retract / correct / early).

        REPLACE tables hold exactly the latest window, so a correction
        applies only when it targets that window — a stale correction
        for an older slice is skipped (the ordered run would have
        overwritten it anyway), which is what makes shuffled input
        converge to the ordered run's final contents.  ``retract`` is
        a no-op on REPLACE: the paired ``correct`` rewrites the table.

        APPEND tables keep every window: ``retract`` deletes the
        retracted rows, ``correct`` inserts the recomputed ones, and
        speculative ``early`` output is ignored (only finals are
        archived)."""
        if self.mode == REPLACE:
            if kind == "retract":
                return
            last = self.stats.last_close
            if last is not None and close_time < last:
                return  # stale: a newer window already owns the table
            self.on_batch(rows, open_time, close_time)
            return
        if kind == "early":
            return
        if self.faults is not None:
            try:
                self.faults.check("channel.write", self.name)
            except Exception:
                self.stats.write_failures += 1
                raise
        txn = self._txn_manager.begin()
        try:
            if kind == "retract":
                removed = self._delete_rows(txn, rows)
                self.stats.rows_replaced += removed
            else:
                for row in rows:
                    self.table.insert(txn, row)
                self.stats.rows_written += len(rows)
            txn.commit()
        except Exception:
            self.stats.write_failures += 1
            if txn.is_active():
                txn.abort()
            raise
        self.stats.batches += 1

    def _delete_rows(self, txn, rows) -> int:
        """Delete one stored copy of each retracted row (values are
        coerced through the table schema so they compare equal to what
        ``on_batch`` stored)."""
        from collections import Counter
        wanted = Counter(tuple(self.table.schema.coerce_row(r))
                         for r in rows)
        removed = 0
        for rid, version in list(self.table.heap.scan(self.table._pool)):
            if version.xmax is not None:
                continue
            key = tuple(version.values)
            if wanted.get(key):
                self.table.delete_version(txn, rid, version)
                wanted[key] -= 1
                removed += 1
        return removed

    def on_tuple(self, row: tuple, event_time: float) -> None:
        # a channel fed by a raw stream archives tuple-at-a-time
        self.on_batch([row], event_time, event_time)

    def on_heartbeat(self, event_time: float) -> None:
        pass

    def on_flush(self) -> None:
        pass
