"""Continuous queries: the generic per-window execution path.

A CQ is "a query [that] produces a stream ... and runs until explicitly
terminated" (Section 3.1).  This module implements the paper's RSTREAM
semantics directly: a window operator turns the stream into a sequence of
relations, and the ordinary relational plan — built by the same planner
that serves snapshot queries — is executed once per relation, with the
``cq_close`` timestamp supplied through the execution context.

Table reads inside the plan go through a
:class:`~repro.txn.window_consistency.WindowConsistentView`, refreshed at
each window boundary (Section 4's window consistency).

Window-less stream references are allowed for pure row-wise transforms
(filter/project), which run per-tuple without buffering.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.catalog import catalog as cat
from repro.errors import PlanningError, WindowError
from repro.eventtime.lateness import DEAD_LETTER, DROP, RETRACT
from repro.eventtime.operator import (
    EMIT_ON_WATERMARK,
    EMIT_PERIODIC,
    EventTimeWindowOperator,
)
from repro.exec import operators as ops
from repro.exec.expressions import RowLayout
from repro.exec.planner import PlanContext, Planner
from repro.sql import ast
from repro.streaming.streams import BaseStream, DerivedStream, StreamConsumer
from repro.streaming.windows import WindowSpec
from repro.txn.window_consistency import WindowConsistentView


@dataclass
class CQStats:
    """Per-CQ counters used by the benchmarks and stats views."""

    tuples_in: int = 0
    windows_evaluated: int = 0
    rows_scanned: int = 0    # rows fed into per-window plan executions
    rows_out: int = 0
    last_close: Optional[float] = None
    # window-close wall time (plan execution + sink delivery), kept by
    # the observability layer
    last_window_seconds: float = 0.0
    total_window_seconds: float = 0.0
    max_window_seconds: float = 0.0
    slow_windows: int = 0


def inline_streaming_views(node, catalog):
    """Replace references to streaming views with their defining query.

    "a query that defines a Streaming View is only instantiated when the
    view is itself used in another query" (Section 3.2) — inlining at CQ
    compile time is exactly that lazy instantiation.  A window clause on
    the view reference is pushed onto the view's (window-less) stream
    reference, so ``FROM filtered_view <VISIBLE '1 minute'>`` works.  The
    view query is deep-copied: the catalog's stored AST is never mutated.
    """
    import copy

    if isinstance(node, ast.TableRef):
        if catalog.relation_kind(node.name) == cat.VIEW:
            view = catalog.get_relation(node.name)
            if getattr(view, "references_streams", False):
                if not isinstance(view.query, ast.Select):
                    raise PlanningError(
                        f"streaming view {node.name!r} is a set operation; "
                        "set operations over streams are not supported"
                    )
                query = copy.deepcopy(view.query)
                query.from_clause = inline_streaming_views(
                    query.from_clause, catalog)
                if node.window is not None:
                    inner = find_stream_refs(query.from_clause, catalog)
                    if len(inner) == 1 and inner[0].window is None:
                        inner[0].window = node.window
                    else:
                        raise PlanningError(
                            f"cannot apply a window to view {node.name!r}: "
                            "its stream is already windowed"
                        )
                return ast.SubqueryRef(query, node.alias or node.name)
        return node
    if isinstance(node, ast.SubqueryRef):
        if isinstance(node.query, ast.Select) \
                and node.query.from_clause is not None:
            node.query.from_clause = inline_streaming_views(
                node.query.from_clause, catalog)
        return node
    if isinstance(node, ast.Join):
        node.left = inline_streaming_views(node.left, catalog)
        node.right = inline_streaming_views(node.right, catalog)
        return node
    return node


def find_stream_refs(node, catalog) -> List[ast.TableRef]:
    """All TableRefs in a FROM tree (recursing into subqueries) that name
    a stream or derived stream."""
    if node is None:
        return []
    if isinstance(node, ast.TableRef):
        kind = catalog.relation_kind(node.name)
        if kind in (cat.STREAM, cat.DERIVED_STREAM):
            return [node]
        return []
    if isinstance(node, ast.SubqueryRef):
        if not isinstance(node.query, ast.Select):
            return []
        return find_stream_refs(node.query.from_clause, catalog)
    if isinstance(node, ast.Join):
        return (find_stream_refs(node.left, catalog)
                + find_stream_refs(node.right, catalog))
    return []


def stream_layout(stream) -> RowLayout:
    """RowLayout of a stream's schema (alias applied later by planner)."""
    return RowLayout([
        (None, column.name, column.datatype)
        for column in stream.schema
    ])


class _FailedSlice:
    """A slice whose aggregation raised: the error is deferred to the
    first window close that covers the slice, so it surfaces inside the
    supervisable window sink (where the supervisor can quarantine it as
    a poison window), not mid-delivery."""

    __slots__ = ("error",)

    def __init__(self, error: Exception):
        self.error = error


class _StreamPort(StreamConsumer):
    """Forwards one stream's events to its window operator and tells the
    owning two-stream CQ when that stream has flushed."""

    def __init__(self, cq: "ContinuousQuery", index: int, window_op):
        self._cq = cq
        self._index = index
        self._op = window_op

    def on_tuple(self, row, event_time):
        self._op.on_tuple(row, event_time)

    def on_heartbeat(self, event_time):
        self._op.on_heartbeat(event_time)

    def on_flush(self):
        self._op.on_flush()
        self._cq._port_flushed(self._index)


class ContinuousQuery(StreamConsumer):
    """One running CQ: window operator(s) + relational plan + sinks.

    Supports one windowed stream (the paper's examples), a window-less
    row transform, or — as an extension — a *two-stream windowed join*:
    both streams carry time windows with the same ADVANCE, and at each
    common boundary the plan runs over the pair of window relations.
    """

    def __init__(self, name: str, select: ast.Select, catalog, txn_manager,
                 emit_empty: bool = True, params=None, obs=None,
                 vectorize: bool = True):
        self.name = name
        self.select = select
        self._catalog = catalog
        self._txn_manager = txn_manager
        self.params = params  # bound '?' values, fixed for the CQ's life
        self.emit_empty = emit_empty  # kept for supervised restarts
        self.stats = CQStats()
        self.view = WindowConsistentView(txn_manager)
        self._sinks = []
        # typed retract/correct/early records; separate from _sinks so
        # the 3-arg window-sink contract (supervisor wrapping,
        # checkpointing) is untouched.  fn(kind, rows, open, close)
        self._correction_sinks = []
        #: late-row quarantine hook: fn(cq_name, row, event_time,
        #: watermark, expired) — wired by the runtime when a
        #: supervisor's dead-letter stream exists
        self.late_handler = None
        # resolved event-time config (None / defaults in arrival mode)
        self.emit_mode = None
        self.emit_every = None
        self.allowed_lateness = 0.0
        self.late_policy = None
        self._emitted = {}   # close_time -> emitted plan output (retract)
        self._c_late = None  # eventtime.late_rows counter (event-time CQs)
        self._h_lag = None   # eventtime.watermark_lag_seconds histogram
        self._running = True
        self.faults = None  # optional FaultInjector (cq.window crashpoint)
        self.obs = obs      # Observability facade (None = uninstrumented)
        # per-operator timing is sampled: armed on every Nth evaluation
        # so untimed windows run through a bare yield-from pass-through
        self._timing_index = 0
        self._timing_on = True

        select.from_clause = inline_streaming_views(
            select.from_clause, catalog)
        refs = find_stream_refs(select.from_clause, catalog)
        if not refs:
            raise PlanningError(
                f"query for CQ {name!r} references no stream")
        if len(refs) > 2:
            raise PlanningError(
                "continuous queries over more than two streams are not "
                "supported; stage one side through a derived stream"
            )
        self._stream_refs = refs
        self._stream_ref = refs[0]
        self.streams = [catalog.get_relation(r.name) for r in refs]
        self.stream = self.streams[0]
        self._batches = [[] for _ in refs]

        self._plan = self._build_plan()
        #: True when at least one plan operator runs in batch mode
        self.vectorized = False
        #: the plan's BatchAggregate when the window runs sliced
        self._sliced_agg = None
        if vectorize:
            from repro.exec.vectorize import vectorize_plan
            root, changed = vectorize_plan(self._plan.root)
            if changed:
                self._plan.root = root
                self.vectorized = True
        if obs is not None:
            self._plan.instrument()
        self.output_names = self._plan.column_names
        self.output_schema = self._plan.output_schema()

        emit = getattr(select, "emit", None)
        if len(refs) == 2:
            if emit is not None:
                raise PlanningError(
                    "EMIT is not supported on stream-stream joins")
            if any(getattr(s, "tracker", None) is not None
                   for s in self.streams):
                raise PlanningError(
                    "stream-stream joins over event-time streams are not "
                    "supported; stage one side through a derived stream")
            self._init_two_stream(emit_empty)
        elif self._stream_ref.window is None:
            if emit is not None:
                raise PlanningError(
                    "EMIT requires a window clause on the stream")
            self._window_spec = None
            self._window_op = None
            self._ports = None
            self._check_transform_shape()
        else:
            self._window_spec = WindowSpec.from_clause(self._stream_ref.window)
            if emit is not None \
                    or getattr(self.stream, "tracker", None) is not None:
                self._window_op = self._init_event_time(emit, emit_empty)
            else:
                self._window_op = self._window_spec.make_operator(
                    self._on_window, emit_empty)
                self._maybe_slice_window(emit_empty)
            self._ports = None

    def _init_event_time(self, emit, emit_empty: bool):
        """Window assignment by event time: the stream's watermark (not
        arrival order) closes slices, and the CQ's EMIT clause controls
        emission and lateness handling."""
        spec = self._window_spec
        if spec.kind != "time":
            raise PlanningError(
                "event-time processing requires a time window "
                "(VISIBLE/ADVANCE), not row counts or slices")
        tracker = getattr(self.stream, "tracker", None)
        if tracker is None:
            raise PlanningError(
                f"EMIT requires an event-time stream; declare "
                f"CREATE STREAM {self.stream.name} (...) WATERMARK "
                f"'<bound>' to designate one")
        self.emit_mode = emit.mode if emit is not None else EMIT_ON_WATERMARK
        self.emit_every = emit.every if emit is not None else None
        if self.emit_mode == EMIT_PERIODIC and self.emit_every is None:
            raise PlanningError("EMIT EVERY requires a period")
        if emit is not None and emit.lateness is not None:
            self.allowed_lateness = float(emit.lateness)
        self.late_policy = (emit.late_policy
                            if emit is not None and emit.late_policy
                            else DROP)
        if self.obs is not None:
            self._c_late = self.obs.registry.counter("eventtime.late_rows")
            self._h_lag = self.obs.registry.histogram(
                "eventtime.watermark_lag_seconds")
        stream = self.stream
        return EventTimeWindowOperator(
            spec.visible, spec.advance, self._on_window, emit_empty,
            wm_fn=lambda: stream.watermark,
            allowed_lateness=self.allowed_lateness,
            late_policy=self.late_policy,
            on_late=self._on_late,
            on_correction=self._on_reopened,
            on_early=self._on_early,
            emit_mode=self.emit_mode,
            emit_every=self.emit_every)

    def _init_two_stream(self, emit_empty: bool) -> None:
        specs = []
        for ref in self._stream_refs:
            if ref.window is None:
                raise PlanningError(
                    "both streams of a stream-stream join need a window")
            spec = WindowSpec.from_clause(ref.window)
            if spec.kind != "time":
                raise PlanningError(
                    "stream-stream joins require time windows")
            specs.append(spec)
        if abs(specs[0].advance - specs[1].advance) > 1e-9:
            raise PlanningError(
                "stream-stream joins require equal ADVANCE on both windows "
                f"(got {specs[0].advance} and {specs[1].advance})"
            )
        self._window_spec = specs[0]
        self._window_specs = specs
        self._advance = specs[0].advance
        self._window_op = None
        self._pending = [{}, {}]        # boundary number -> (rows, open, close)
        self._flushed = [False, False]
        ops_pair = [
            spec.make_operator(
                (lambda rows, o, c, i=i: self._on_joint(i, rows, o, c)),
                emit_empty=True)
            for i, spec in enumerate(specs)
        ]
        self._ports = [_StreamPort(self, i, op)
                       for i, op in enumerate(ops_pair)]

    # -- plumbing -----------------------------------------------------------

    @property
    def window_spec(self) -> Optional[WindowSpec]:
        return self._window_spec

    def is_join(self) -> bool:
        return len(self._stream_refs) == 2

    def attach(self) -> None:
        """Subscribe to the source stream(s) and start running."""
        if self._ports is not None:
            for stream, port in zip(self.streams, self._ports):
                stream.subscribe(port)
            return
        target = self._window_op if self._window_op is not None else self
        self.stream.subscribe(target)

    def stop(self) -> None:
        """Terminate the CQ (paper: CQs run "until explicitly terminated")."""
        if self._ports is not None:
            for stream, port in zip(self.streams, self._ports):
                stream.unsubscribe(port)
        else:
            target = self._window_op if self._window_op is not None else self
            self.stream.unsubscribe(target)
        self._running = False

    def add_sink(self, sink) -> None:
        """``sink(rows, open_time, close_time)`` called per window."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach one sink (no-op when it was never added)."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def add_correction_sink(self, sink) -> None:
        """``sink(kind, rows, open_time, close_time)`` called for typed
        retract/correct/early records (event-time CQs only)."""
        self._correction_sinks.append(sink)

    def remove_correction_sink(self, sink) -> None:
        if sink in self._correction_sinks:
            self._correction_sinks.remove(sink)

    def is_event_time(self) -> bool:
        return isinstance(self._window_op, EventTimeWindowOperator)

    def _build_plan(self):
        holder = self

        def resolver(ref: ast.TableRef):
            for i, stream_ref in enumerate(holder._stream_refs):
                if ref is stream_ref:
                    fetch = (lambda i=i: holder._batches[i])
                    source = ops.RowSource(fetch, stream_ref.name)
                    # conversion input for the vectorizer: the window
                    # relation can be pulled as one column batch
                    source.vector_source = (
                        fetch,
                        [c.datatype for c in holder.streams[i].schema],
                        stream_ref.name, True)
                    return source, stream_layout(holder.streams[i])
            return None

        ctx = PlanContext(
            self._catalog,
            self._txn_manager,
            snapshot_fn=lambda: self.view.snapshot,
            source_resolver=resolver,
        )
        return Planner(ctx).plan_select(self.select)

    def _check_transform_shape(self):
        from repro.exec.planner import _contains_aggregate

        select = self.select
        simple = (isinstance(select.from_clause, ast.TableRef)
                  and not select.group_by
                  and select.having is None
                  and not select.order_by
                  and select.limit is None
                  and not select.distinct
                  and not any(_contains_aggregate(item.expr)
                              for item in select.items
                              if not isinstance(item.expr, ast.Star)))
        if not simple:
            raise WindowError(
                f"stream {self.stream.name!r} is referenced without a "
                "window; only row-wise transforms may omit the window clause"
            )

    # -- execution ------------------------------------------------------------

    def _make_ctx(self, open_time: float, close_time: float) -> dict:
        ctx = {"cq_close": close_time, "cq_open": open_time}
        if self.params is not None:
            ctx["params"] = self.params
        return ctx


    def _on_window(self, rows, open_time: float, close_time: float) -> None:
        """Window closed: refresh the snapshot and run the plan."""
        if not self._running:
            return
        if self.faults is not None:
            self.faults.check("cq.window", self.name)
        self.view.refresh()
        obs = self.obs
        traces = op_before = None
        if obs is not None:
            timed = self._arm_timing()
            traces = obs.take_traces(self.stream, close_time)
            if traces and timed:
                op_before = self._op_snapshot()
        started_wall = time.time()
        started = time.perf_counter()
        self._batches[0] = rows
        ctx = self._make_ctx(open_time, close_time)
        try:
            out = list(self._plan.execute(ctx))
        finally:
            self._batches[0] = []
        exec_seconds = time.perf_counter() - started
        self.stats.windows_evaluated += 1
        self.stats.rows_scanned += len(rows)
        self.stats.rows_out += len(out)
        self.stats.last_close = close_time
        if self.late_policy == RETRACT:
            self._remember_emitted(close_time, out)
        if self._h_lag is not None:
            self._h_lag.observe(self.stream.tracker.lag())
        emit_started = time.perf_counter()
        for sink in self._sinks:
            sink(out, open_time, close_time)
        if obs is not None:
            emit_seconds = time.perf_counter() - emit_started
            self._record_window(exec_seconds + emit_seconds, close_time)
            if traces:
                obs.trace_window(self, traces, self._plan.root, op_before,
                                 started_wall, exec_seconds, emit_seconds)

    # -- sliced window mode (vectorized incremental aggregation) --------------

    def _maybe_slice_window(self, emit_empty: bool) -> None:
        """Upgrade a plain time window to per-slice incremental
        aggregation when the vectorized plan allows it: a single
        BatchAggregate over a batch filter/project chain rooted at the
        stream's window relation, with nothing below the aggregate
        reading the window-close context.  Each sealed slice is then
        reduced once, and window close merges slice partials instead of
        re-aggregating every visible row."""
        from repro.exec import batch_ops
        from repro.exec.vectorize import walk
        from repro.streaming.shared import _time_gcd
        from repro.streaming.windows import (
            SlicedTimeWindowOperator,
            TimeWindowOperator,
        )

        spec = self._window_spec
        if (not self.vectorized
                or spec.kind != "time"
                or math.isinf(spec.visible)
                or type(self._window_op) is not TimeWindowOperator):
            return
        aggs = [op for op in walk(self._plan.root)
                if isinstance(op, batch_ops.BatchAggregate)]
        if len(aggs) != 1:
            return
        agg = aggs[0]
        if agg.uses_context:
            return
        node = agg.child
        while isinstance(node, (batch_ops.BatchFilter,
                                batch_ops.BatchProject)):
            if node.uses_context:
                # cq_close/cq_open below the aggregate vary per window;
                # a slice partial would bake in the wrong close time
                return
            node = node.child
        if not (isinstance(node, batch_ops.BatchSource)
                and node.is_stream_source):
            return
        width = _time_gcd(spec.visible, spec.advance)
        self._sliced_agg = agg
        self._window_op = SlicedTimeWindowOperator(
            spec.visible, spec.advance, self._on_sliced_window, emit_empty,
            self._slice_partial, width)

    def _slice_partial(self, rows):
        """Reduce one sealed slice's rows to mergeable partial states by
        running the batch subtree under the aggregate.  Evaluation
        errors (division by zero, type clashes) are deferred: sealing
        happens during stream delivery, but the error belongs to the
        window close, where the supervisor can quarantine it as a
        poison window just like an iterator-mode plan failure."""
        ctx = {"params": self.params} if self.params is not None else {}
        self._batches[0] = rows
        try:
            return self._sliced_agg.accumulate(ctx)
        except Exception as exc:
            return _FailedSlice(exc)
        finally:
            self._batches[0] = []

    def _finalize_slices(self, partials):
        for part in partials:
            if isinstance(part, _FailedSlice):
                raise part.error
        agg = self._sliced_agg
        return agg.finalize(agg.merge_partials(partials))

    def _on_sliced_window(self, partials, open_time: float,
                          close_time: float) -> None:
        """Window closed on the sliced path: merge + finalize the slice
        partials, then run the plan with the aggregate pinned to the
        result — post-aggregate operators (projection with cq_close,
        HAVING, ORDER BY) and the plan's instrumentation behave exactly
        as in iterator mode."""
        if not self._running:
            return
        if self.faults is not None:
            self.faults.check("cq.window", self.name)
        self.view.refresh()
        obs = self.obs
        traces = op_before = None
        if obs is not None:
            timed = self._arm_timing()
            traces = obs.take_traces(self.stream, close_time)
            if traces and timed:
                op_before = self._op_snapshot()
        started_wall = time.time()
        started = time.perf_counter()
        ctx = self._make_ctx(open_time, close_time)
        rows = self._finalize_slices(partials)
        self._sliced_agg.set_merged(rows)
        try:
            out = list(self._plan.execute(ctx))
        finally:
            self._sliced_agg.set_merged(None)
        exec_seconds = time.perf_counter() - started
        self.stats.windows_evaluated += 1
        self.stats.rows_scanned += self._window_op.last_window_input
        self.stats.rows_out += len(out)
        self.stats.last_close = close_time
        emit_started = time.perf_counter()
        for sink in self._sinks:
            sink(out, open_time, close_time)
        if obs is not None:
            emit_seconds = time.perf_counter() - emit_started
            self._record_window(exec_seconds + emit_seconds, close_time)
            if traces:
                obs.trace_window(self, traces, self._plan.root, op_before,
                                 started_wall, exec_seconds, emit_seconds)

    def is_sliced(self) -> bool:
        """True when the window runs incremental per-slice aggregation."""
        return self._sliced_agg is not None

    # -- event-time: lateness, retraction, early emission ---------------------

    def _remember_emitted(self, close_time: float, out: list) -> None:
        """Keep emitted output per closed slice while it is still
        correctable (the retract policy's lateness bound), so a
        recomputation can emit the matching retraction first."""
        self._emitted[close_time] = list(out)
        horizon = (self.stream.watermark - self.allowed_lateness
                   - self._window_spec.advance)
        if horizon > float("-inf"):
            for stale in [c for c in self._emitted if c < horizon]:
                del self._emitted[stale]

    def _on_late(self, row, event_time: float, watermark: float,
                 expired: bool) -> None:
        """A tuple arrived below the watermark.  Counting is free; the
        dead-letter policy (and retract's expired leftovers) hand the
        row to the runtime-wired quarantine hook."""
        if self._c_late is not None:
            self._c_late.inc()
        if self.late_handler is not None \
                and (expired or self.late_policy == DEAD_LETTER):
            self.late_handler(self.name, row, event_time, watermark,
                              expired)

    def _on_reopened(self, rows, open_time: float,
                     close_time: float) -> None:
        """An in-bound late tuple re-opened a closed slice: rerun the
        plan over the recomputed relation and emit a typed
        retract(old)/correct(new) pair so downstream state converges."""
        if not self._running:
            return
        self.view.refresh()
        self._batches[0] = rows
        ctx = self._make_ctx(open_time, close_time)
        try:
            out = list(self._plan.execute(ctx))
        finally:
            self._batches[0] = []
        self.stats.rows_out += len(out)
        old = self._emitted.get(close_time)
        if old is not None:
            self._emit_correction("retract", old, open_time, close_time)
        self._emit_correction("correct", out, open_time, close_time)
        self._emitted[close_time] = out

    def _on_early(self, rows, open_time: float, close_time: float) -> None:
        """EMIT ON CHANGE / EMIT EVERY: speculative early output of the
        still-open slice, typed so consumers can tell it from a final."""
        if not self._running:
            return
        self.view.refresh()
        self._batches[0] = rows
        ctx = self._make_ctx(open_time, close_time)
        try:
            out = list(self._plan.execute(ctx))
        finally:
            self._batches[0] = []
        self._emit_correction("early", out, open_time, close_time)

    def _emit_correction(self, kind: str, rows, open_time: float,
                         close_time: float) -> None:
        for sink in self._correction_sinks:
            sink(kind, rows, open_time, close_time)

    # -- two-stream join mode ------------------------------------------------------

    def _on_joint(self, index: int, rows, open_time: float,
                  close_time: float) -> None:
        """One stream's window closed; evaluate when both sides have the
        relation for this boundary."""
        if not self._running:
            return
        key = round(close_time / self._advance)
        self._pending[index][key] = (list(rows), open_time, close_time)
        if key in self._pending[1 - index]:
            self._evaluate_pair(key)

    def _evaluate_pair(self, key: int) -> None:
        left = self._pending[0].pop(key)
        right = self._pending[1].pop(key)
        # boundaries the other side never produced (before its first
        # event) can no longer match: discard them
        for side in self._pending:
            for stale in [k for k in side if k < key]:
                del side[stale]
        if self.faults is not None:
            self.faults.check("cq.window", self.name)
        self.view.refresh()
        close_time = max(left[2], right[2])
        open_time = min(left[1], right[1])
        obs = self.obs
        traces = op_before = None
        if obs is not None:
            timed = self._arm_timing()
            traces = (obs.take_traces(self.streams[0], close_time)
                      + obs.take_traces(self.streams[1], close_time))
            if traces and timed:
                op_before = self._op_snapshot()
        started_wall = time.time()
        started = time.perf_counter()
        self._batches[0] = left[0]
        self._batches[1] = right[0]
        ctx = self._make_ctx(open_time, close_time)
        try:
            out = list(self._plan.execute(ctx))
        finally:
            self._batches[0] = []
            self._batches[1] = []
        exec_seconds = time.perf_counter() - started
        self.stats.windows_evaluated += 1
        self.stats.rows_scanned += len(left[0]) + len(right[0])
        self.stats.rows_out += len(out)
        self.stats.last_close = close_time
        emit_started = time.perf_counter()
        for sink in self._sinks:
            sink(out, open_time, close_time)
        if obs is not None:
            emit_seconds = time.perf_counter() - emit_started
            self._record_window(exec_seconds + emit_seconds, close_time)
            if traces:
                obs.trace_window(self, traces, self._plan.root, op_before,
                                 started_wall, exec_seconds, emit_seconds)

    def _port_flushed(self, index: int) -> None:
        """A source stream flushed; once both have, drain unmatched
        boundaries by pairing them with the other side's empty relation."""
        self._flushed[index] = True
        if not all(self._flushed):
            return
        leftovers = sorted(set(self._pending[0]) | set(self._pending[1]))
        for key in leftovers:
            close = key * self._advance
            for i, spec in enumerate(self._window_specs):
                if key not in self._pending[i]:
                    self._pending[i][key] = ([], close - spec.visible, close)
            self._evaluate_pair(key)
        self._flushed = [False, False]

    # -- transform (window-less) mode -------------------------------------------

    def on_tuple(self, row: tuple, event_time: float) -> None:
        if not self._running:
            return
        self.stats.tuples_in += 1
        self.view.refresh()
        obs = self.obs
        traces = op_before = None
        if obs is not None:
            timed = self._arm_timing()
            traces = obs.take_traces(self.stream, event_time,
                                     inclusive=True)
            if traces and timed:
                op_before = self._op_snapshot()
        started_wall = time.time()
        started = time.perf_counter()
        self._batches[0] = [row]
        ctx = self._make_ctx(event_time, event_time)
        try:
            out = list(self._plan.execute(ctx))
        finally:
            self._batches[0] = []
        exec_seconds = time.perf_counter() - started
        self.stats.rows_scanned += 1
        emitted = False
        emit_started = started_wall
        if out:
            self.stats.windows_evaluated += 1
            self.stats.rows_out += len(out)
            self.stats.last_close = event_time
            emit_started = time.perf_counter()
            for sink in self._sinks:
                sink(out, event_time, event_time)
            emitted = True
        if obs is not None:
            emit_seconds = (time.perf_counter() - emit_started
                            if emitted else 0.0)
            self._record_window(exec_seconds + emit_seconds, event_time)
            if traces:
                obs.trace_window(self, traces, self._plan.root, op_before,
                                 started_wall, exec_seconds, emit_seconds)

    def on_heartbeat(self, event_time: float) -> None:
        pass

    def on_flush(self) -> None:
        pass

    # -- observability --------------------------------------------------------

    #: operator timing is armed on one evaluation out of this many; the
    #: rest run through the wrapper's bare pass-through.  The first
    #: evaluation is always timed so EXPLAIN ANALYZE has data at once.
    TIMING_SAMPLE_EVERY = 8

    def _arm_timing(self) -> bool:
        """Flip per-operator timing on/off for the coming evaluation
        according to the sampling schedule.  The operator loop only runs
        when the armed state actually changes."""
        index = self._timing_index
        self._timing_index = index + 1
        timed = index % self.TIMING_SAMPLE_EVERY == 0
        if timed != self._timing_on:
            from repro.obs.service import walk_operators
            for op, _depth, _parent in walk_operators(self._plan.root):
                op.set_timing(timed)
            self._timing_on = timed
        return timed

    def _op_snapshot(self):
        """(operator, tuples_out, wall_seconds) for every instrumented
        operator — the 'before' side of a per-window stats delta."""
        from repro.obs.service import walk_operators
        return [(op, op.stats.tuples_out, op.stats.wall_seconds)
                for op, _depth, _parent in walk_operators(self._plan.root)
                if op.stats is not None]

    def _record_window(self, duration: float, close_time: float) -> None:
        st = self.stats
        st.last_window_seconds = duration
        st.total_window_seconds += duration
        if duration > st.max_window_seconds:
            st.max_window_seconds = duration
        self.obs.on_window_close(self, duration, close_time)

    def explain(self, analyze: bool = False) -> str:
        """The per-window relational plan; with ``analyze``, annotated
        with per-operator stats accumulated since the CQ started.
        Event-time CQs lead with their emit clause and lateness policy."""
        text = self._plan.explain(analyze=analyze)
        if self.is_event_time():
            if self.emit_mode == EMIT_PERIODIC:
                emit = f"EVERY {self.emit_every}s"
            else:
                emit = f"ON {self.emit_mode.upper()}"
            header = (f"Emit: {emit} (lateness {self.allowed_lateness}s, "
                      f"policy {self.late_policy}, watermark bound "
                      f"{self.stream.watermark_bound}s)")
            text = header + "\n" + text
        return text
