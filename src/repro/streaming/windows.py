"""Window operators: they turn a stream into a sequence of relations.

This is the paper's Figure 1 made executable.  A window clause
``<VISIBLE '5 minutes' ADVANCE '1 minute'>`` yields, every minute, the
relation of tuples from the trailing five minutes; the CQ runtime then
applies an ordinary relational plan to each relation (RSTREAM semantics,
Section 3.1).

Boundary convention: windows close at event times that are multiples of
ADVANCE (aligned to the epoch); the window closing at ``T`` covers
``[T - VISIBLE, T)``.  A tuple with event time exactly ``T`` proves the
window closed and belongs to the next one.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from typing import Callable, Optional

from repro.errors import WindowError
from repro.sql import ast
from repro.streaming.streams import StreamConsumer

Sink = Callable[[list, float, float], None]  # (rows, open_time, close_time)


class WindowSpec:
    """Normalised window parameters, built from a parsed window clause."""

    def __init__(self, kind: str, visible=None, advance=None, count=None):
        self.kind = kind            # 'time' | 'rows' | 'windows'
        self.visible = visible      # seconds or row count
        self.advance = advance
        self.count = count          # for '<slices k windows>'

    @classmethod
    def from_clause(cls, clause: ast.WindowClause) -> "WindowSpec":
        if clause.is_window_count():
            return cls("windows", count=clause.slices_windows)
        if clause.is_row_based():
            return cls("rows", visible=clause.visible_rows,
                       advance=clause.advance_rows)
        if clause.visible <= 0 or clause.advance <= 0:
            raise WindowError("window extents must be positive")
        if math.isinf(clause.advance):
            raise WindowError("ADVANCE must be finite")
        return cls("time", visible=float(clause.visible),
                   advance=float(clause.advance))

    def make_operator(self, sink: Sink, emit_empty: bool = True):
        if self.kind == "time":
            return TimeWindowOperator(self.visible, self.advance, sink,
                                      emit_empty)
        if self.kind == "rows":
            return RowWindowOperator(self.visible, self.advance, sink)
        return WindowCountOperator(self.count, sink)

    def __repr__(self):
        if self.kind == "windows":
            return f"WindowSpec(slices {self.count} windows)"
        return f"WindowSpec({self.kind}, visible={self.visible}, advance={self.advance})"


class TimeWindowOperator(StreamConsumer):
    """Sliding/tumbling time window with eviction.

    State is a buffer of (event_time, row) plus the next close boundary;
    after a close at ``T``, rows older than ``T + advance - visible`` can
    never be visible again and are evicted.
    """

    def __init__(self, visible: float, advance: float, sink: Sink,
                 emit_empty: bool = True):
        if visible <= 0 or advance <= 0:
            raise WindowError("window extents must be positive")
        self.visible = float(visible)
        self.advance = float(advance)
        self.sink = sink
        self.emit_empty = emit_empty
        self._buffer = deque()            # (event_time, row)
        self._base: Optional[float] = None
        self._boundary_index = 0          # next close = base + index*advance
        self.tuples_in = 0
        self.windows_closed = 0
        self.rows_emitted = 0
        self._flushed = False

    # -- boundary arithmetic ----------------------------------------------------

    def _next_boundary(self) -> Optional[float]:
        if self._base is None:
            return None
        return self._base + self._boundary_index * self.advance

    def _start_at(self, event_time: float) -> None:
        # first close boundary: the next multiple of ``advance`` strictly
        # after the first event
        self._base = math.floor(event_time / self.advance) * self.advance
        self._boundary_index = 1

    # -- consumer protocol --------------------------------------------------------

    def on_tuple(self, row: tuple, event_time: float) -> None:
        if self._base is None:
            self._start_at(event_time)
        self._close_through(event_time)
        self._buffer.append((event_time, row))
        self.tuples_in += 1

    def on_heartbeat(self, event_time: float) -> None:
        if self._base is None:
            return
        self._close_through(event_time)

    def on_flush(self) -> None:
        if self._flushed:
            return
        self._flushed = True
        if math.isinf(self.visible):
            # cumulative window: one final emission covers everything
            if self._buffer:
                self._close(self._next_boundary())
                self._buffer.clear()
            return
        # emit every remaining window that still sees a buffered row
        while self._buffer:
            self._close(self._next_boundary())

    def _close_through(self, event_time: float) -> None:
        # a tuple at exactly the boundary proves the window complete
        while True:
            boundary = self._next_boundary()
            if boundary is None or boundary > event_time:
                return
            self._close(boundary)

    def _close(self, boundary: float) -> None:
        open_time = boundary - self.visible
        visible_rows = [
            row for when, row in self._buffer
            if open_time <= when < boundary
        ]
        self._boundary_index += 1
        # evict rows no future window can see
        horizon = self._next_boundary() - self.visible
        while self._buffer and self._buffer[0][0] < horizon:
            self._buffer.popleft()
        self.windows_closed += 1
        self.rows_emitted += len(visible_rows)
        if visible_rows or self.emit_empty:
            self.sink(visible_rows, open_time, boundary)

    @property
    def buffered(self) -> int:
        return len(self._buffer)


class SlicedTimeWindowOperator(TimeWindowOperator):
    """Time window with incremental per-slice aggregation.

    The window's timeline is cut into slices of ``slice_width`` (the gcd
    of VISIBLE and ADVANCE, so every close boundary and every window
    open falls on a slice edge).  When a slice fills, ``slice_fn``
    reduces its rows to a mergeable aggregate *partial*; a window close
    hands the covered partials to the sink, which merges and finalizes
    them instead of re-aggregating the whole buffer.  An overlapping
    window therefore pays for each row once, not once per window it is
    visible in.  ``slice_fn`` must not raise: evaluation errors are
    wrapped into the partial and surface at window close, inside the
    (supervisable) sink call — exactly where the plain operator's plan
    execution would have raised them.

    The row buffer is kept alongside the partials: eviction, the
    ``buffered`` gauge, and checkpoint/recovery (which re-derives the
    slice state via :meth:`rebuild_slices`) all work as in the parent.
    """

    def __init__(self, visible: float, advance: float, sink: Sink,
                 emit_empty: bool, slice_fn, slice_width: float):
        super().__init__(visible, advance, sink, emit_empty)
        self.slice_width = float(slice_width)
        self._slice_fn = slice_fn        # rows -> partial (never raises)
        self._sealed = {}                # slice index -> (row_count, partial)
        self._cur_index: Optional[int] = None
        self._cur_rows: list = []
        #: rows visible in the most recently closed window
        self.last_window_input = 0

    def _slice_index(self, event_time: float) -> int:
        # the epsilon keeps an event exactly on a slice edge (up to float
        # representation) in the slice it opens
        return int(math.floor(event_time / self.slice_width + 1e-9))

    def on_tuple(self, row: tuple, event_time: float) -> None:
        if self._base is None:
            self._start_at(event_time)
        self._close_through(event_time)
        idx = self._slice_index(event_time)
        if idx != self._cur_index:
            if self._cur_index is not None:
                self._seal_current()
            self._cur_index = idx
        self._cur_rows.append(row)
        self._buffer.append((event_time, row))
        self.tuples_in += 1

    def on_tuples(self, rows: list, times: list) -> None:
        """Bulk arrival (sorted): chunk rows by slice so each chunk is
        appended with two list extends instead of per-row calls."""
        n = len(rows)
        i = 0
        width = self.slice_width
        while i < n:
            when = times[i]
            if self._base is None:
                self._start_at(when)
            self._close_through(when)
            idx = self._slice_index(when)
            if idx != self._cur_index:
                if self._cur_index is not None:
                    self._seal_current()
                self._cur_index = idx
            # the chunk may not cross the next close boundary (windows
            # must fire in order) nor the end of the current slice (the
            # slice edge shares _slice_index's epsilon)
            limit = min(self._next_boundary(), (idx + 1 - 1e-9) * width)
            j = bisect_left(times, limit, i)
            chunk = rows[i:j]
            self._cur_rows.extend(chunk)
            self._buffer.extend(zip(times[i:j], chunk))
            self.tuples_in += j - i
            i = j

    def _seal_current(self) -> None:
        rows = self._cur_rows
        if rows:
            self._sealed[self._cur_index] = (len(rows), self._slice_fn(rows))
        self._cur_rows = []
        self._cur_index = None

    def _close(self, boundary: float) -> None:
        # every buffered row is below the boundary and boundaries are
        # multiples of the slice width, so the open slice is complete
        if self._cur_index is not None:
            self._seal_current()
        open_time = boundary - self.visible
        width = self.slice_width
        first = int(round(open_time / width))
        last = int(round(boundary / width))
        total = 0
        parts = []
        sealed = self._sealed
        for idx in range(first, last):
            entry = sealed.get(idx)
            if entry is not None:
                total += entry[0]
                parts.append(entry[1])
        self._boundary_index += 1
        horizon = self._next_boundary() - self.visible
        buffer = self._buffer
        while buffer and buffer[0][0] < horizon:
            buffer.popleft()
        # a slice no future window can see goes with its rows
        horizon_index = int(math.floor(horizon / width + 1e-9))
        for idx in [k for k in sealed if k < horizon_index]:
            del sealed[idx]
        self.windows_closed += 1
        self.rows_emitted += total
        self.last_window_input = total
        if total or self.emit_empty:
            # the sink merges + finalizes the partials; a deferred slice
            # error re-raises there, under the supervisor's window guard
            self.sink(parts, open_time, boundary)

    def rebuild_slices(self) -> None:
        """Recompute the slice state from the (restored) row buffer;
        called by checkpoint recovery after it refills ``_buffer``."""
        self._sealed = {}
        self._cur_index = None
        self._cur_rows = []
        for event_time, row in self._buffer:
            idx = self._slice_index(event_time)
            if idx != self._cur_index:
                if self._cur_index is not None:
                    self._seal_current()
                self._cur_index = idx
            self._cur_rows.append(row)


class RowWindowOperator(StreamConsumer):
    """Row-count window: every ``advance`` arrivals, the last ``visible``
    rows form the window.  Close time is the latest row's event time."""

    def __init__(self, visible_rows: int, advance_rows: int, sink: Sink):
        if visible_rows <= 0 or advance_rows <= 0:
            raise WindowError("row window extents must be positive")
        self.visible_rows = int(visible_rows)
        self.advance_rows = int(advance_rows)
        self.sink = sink
        self._buffer = deque(maxlen=self.visible_rows)
        self._since_emit = 0
        self._last_time = None
        self._first_time = None
        self.tuples_in = 0
        self.windows_closed = 0
        self._flushed = False

    def on_tuple(self, row: tuple, event_time: float) -> None:
        self._buffer.append((event_time, row))
        self.tuples_in += 1
        self._since_emit += 1
        self._last_time = event_time
        if self._first_time is None:
            self._first_time = event_time
        if self._since_emit >= self.advance_rows:
            self._emit()

    def on_flush(self) -> None:
        if self._flushed:
            return
        self._flushed = True
        if self._since_emit > 0 and self._buffer:
            self._emit()

    def _emit(self) -> None:
        rows = [row for _when, row in self._buffer]
        open_time = self._buffer[0][0]
        self.windows_closed += 1
        self._since_emit = 0
        self.sink(rows, open_time, self._last_time)


class WindowCountOperator(StreamConsumer):
    """``<slices k windows>`` over a *derived* stream (paper, Example 5):
    each upstream window-result is one slice; every new slice emits the
    concatenation of the last ``k`` of them."""

    def __init__(self, count: int, sink: Sink):
        if count <= 0:
            raise WindowError("slices count must be positive")
        self.count = int(count)
        self.sink = sink
        self._batches = deque(maxlen=self.count)
        self.windows_closed = 0

    def on_batch(self, rows, open_time: float, close_time: float) -> None:
        self._batches.append((list(rows), open_time, close_time))
        combined = []
        for batch_rows, _open, _close in self._batches:
            combined.extend(batch_rows)
        window_open = self._batches[0][1]
        self.windows_closed += 1
        self.sink(combined, window_open, close_time)

    def on_tuple(self, row: tuple, event_time: float) -> None:
        # a raw stream feeding a window-count operator: treat each tuple
        # as a single-row batch
        self.on_batch([row], event_time, event_time)
