"""CQSupervisor: per-window error isolation, quarantine and restart.

The paper's operational claim is that continuous queries are *always on*
(Sections 3.1, 4): a production stream-relational engine cannot let one
poison tuple, one raising subscriber or one failed archive write take the
pipeline down.  The supervisor is the runtime's answer:

- **Dead-letter quarantine.**  A failing window, tuple or archive batch
  is captured as a :class:`DeadLetter` — queryable through the
  ``repro_dead_letters`` system view and republished on a real stream
  (``repro_dead_letter_stream``) so a CQ can watch failures like any
  other feed.  The affected CQ keeps producing subsequent windows.

- **Bounded retry with exponential backoff** for channel writes: a
  transient storage fault (the simulated disk hiccuping) is retried up
  to ``policy.channel_retry_limit`` times with delays
  ``backoff_base * backoff_factor^attempt`` before the batch is
  quarantined.

- **Automatic restart** of a CQ that keeps failing: after
  ``policy.restart_limit`` consecutive window failures the supervisor
  rebuilds the CQ and recovers its runtime state through the existing
  :mod:`repro.streaming.recovery` paths — WAL checkpoint when one
  exists, else the paper's rebuild-from-active-table, else a cold start.
  After ``policy.max_restarts`` unsuccessful restarts the CQ is
  quarantined (detached) instead of flapping forever.

Supervision state machine (per supervised entity)::

    RUNNING --failure--> DEGRADED --restart_limit--> RESTARTING
       ^                     |                            |
       |<----next success----+            RUNNING <-------+
       |                                       (recovery ok)
       +--- QUARANTINED <--- max_restarts exceeded / restart failed
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.catalog import catalog as cat
from repro.catalog.schema import Column, Schema
from repro.errors import RecoveryError
from repro.eventtime.lateness import LATE_EVENT as _LATE_EVENT
from repro.streaming.cq import ContinuousQuery
from repro.streaming.recovery import (
    CheckpointManager,
    recover_from_active_table,
)
from repro.streaming.streams import BaseStream
from repro.types.datatypes import (
    IntegerType,
    TimestampType,
    VarcharType,
)

# supervision states
RUNNING = "running"
DEGRADED = "degraded"
RESTARTING = "restarting"
QUARANTINED = "quarantined"

# dead-letter kinds
POISON_WINDOW = "poison-window"
POISON_TUPLE = "poison-tuple"
SUBSCRIBER_ERROR = "subscriber-error"
CHANNEL_WRITE = "channel-write"
LOAD_SHED = "load-shed"
RESTART_LOSS = "restart-loss"
SLOW_CONSUMER = "slow-consumer"   # a network subscriber fell behind
#: rows below the watermark, quarantined by a CQ's lateness policy
LATE_EVENT = _LATE_EVENT

#: catalog name of the stream dead letters are republished on
DEAD_LETTER_STREAM = "repro_dead_letter_stream"


@dataclass
class SupervisorPolicy:
    """Tunables; every field is reachable through ``SET`` session options."""

    channel_retry_limit: int = 3     # retries before a batch is quarantined
    backoff_base: float = 0.01       # seconds; first retry delay
    backoff_factor: float = 2.0      # delay multiplier per retry
    restart_limit: int = 2           # consecutive window failures -> restart
    max_restarts: int = 3            # restarts before quarantine
    dead_letter_capacity: int = 10000


@dataclass
class DeadLetter:
    """One quarantined unit of work."""

    seq: int
    source: str          # CQ / stream / channel name
    kind: str            # POISON_WINDOW, SUBSCRIBER_ERROR, ...
    reason: str          # stringified exception
    rows: list           # the quarantined payload
    open_time: Optional[float] = None
    close_time: Optional[float] = None


@dataclass
class _Entry:
    """Supervision record for one CQ, channel or stream."""

    name: str
    kind: str            # 'cq' | 'channel' | 'stream'
    target: object
    state: str = RUNNING
    failures: int = 0
    consecutive_failures: int = 0
    restarts: int = 0
    retries: int = 0
    dead_letters: int = 0
    backoff_seconds: float = 0.0
    last_error: Optional[str] = None
    # cq-only recovery wiring
    active_table: object = None
    stime_column: Optional[str] = None
    checkpointer: object = None


class CQSupervisor:
    """Owns the dead-letter log and the supervision wrappers.

    One supervisor per database; the runtime hands it every CQ, channel
    and base stream as they are created (and any that already exist when
    supervision is switched on mid-session).
    """

    def __init__(self, runtime, wal=None,
                 policy: Optional[SupervisorPolicy] = None,
                 sleep_fn: Optional[Callable[[float], None]] = None):
        self.runtime = runtime
        self.wal = wal
        self.policy = policy if policy is not None else SupervisorPolicy()
        # backoff delays are *accounted* by default rather than slept:
        # the engine is simulated-time driven, and chaos tests should not
        # wall-block.  Pass sleep_fn=time.sleep for real pauses.
        self._sleep_fn = sleep_fn
        self._entries: List[_Entry] = []
        self._by_target = {}
        self.dead_letter_log: List[DeadLetter] = []
        self._dl_seq = 0
        self._dl_stream: Optional[BaseStream] = None
        self._in_dead_letter = False

    # ------------------------------------------------------------------
    # dead letters
    # ------------------------------------------------------------------

    def _dead_letter_schema(self) -> Schema:
        return Schema([
            Column("source", VarcharType(None, "text")),
            Column("kind", VarcharType(None, "text")),
            Column("reason", VarcharType(None, "text")),
            Column("rowcount", IntegerType("bigint")),
            Column("payload", VarcharType(None, "text")),
            Column("qtime", TimestampType(), cqtime="system"),
        ])

    def dead_letter_stream(self) -> BaseStream:
        """The live stream dead letters are republished on (created and
        registered in the catalog on first use)."""
        if self._dl_stream is None:
            stream = BaseStream(DEAD_LETTER_STREAM,
                                self._dead_letter_schema(),
                                disorder_policy="drop")
            # the quarantine sink must never itself take the engine down
            stream.error_handler = lambda row, t, errors: None
            self.runtime.catalog.add_relation(
                DEAD_LETTER_STREAM, cat.STREAM, stream)
            self._dl_stream = stream
        return self._dl_stream

    def quarantine(self, source: str, kind: str, reason: str, rows,
                   open_time: Optional[float] = None,
                   close_time: Optional[float] = None) -> DeadLetter:
        """Record one dead letter and republish it on the dead-letter
        stream.  Re-entrant quarantines (a dead-letter consumer failing)
        are absorbed without recursion."""
        self._dl_seq += 1
        letter = DeadLetter(self._dl_seq, source, kind, reason,
                            list(rows), open_time, close_time)
        self.dead_letter_log.append(letter)
        if len(self.dead_letter_log) > self.policy.dead_letter_capacity:
            del self.dead_letter_log[0]
        entry = self._by_target.get(id(self._target_for(source)))
        if entry is not None:
            entry.dead_letters += 1
        if not self._in_dead_letter:
            self._in_dead_letter = True
            try:
                stream = self.dead_letter_stream()
                stream.insert(
                    (source, kind, reason, len(letter.rows),
                     repr(letter.rows)[:2048], None),
                    at=float(self._dl_seq))
            except Exception:
                pass  # quarantine must be unconditionally safe
            finally:
                self._in_dead_letter = False
        return letter

    def _target_for(self, source: str):
        for entry in self._entries:
            if entry.name == source:
                return entry.target
        return None

    # ------------------------------------------------------------------
    # adoption
    # ------------------------------------------------------------------

    def adopt_cq(self, cq, active_table=None, stime_column: str = None,
                 checkpointer=None) -> Optional[_Entry]:
        """Supervise one CQ: window failures are quarantined, repeated
        failures restart it through the recovery paths."""
        if id(cq) in self._by_target:
            return self._by_target[id(cq)]
        if getattr(cq, "shared", False):
            # shared-slice CQs multiplex one aggregator across consumers;
            # they are tracked (visible in the status view) but their
            # fan-in is guarded at the stream level only
            entry = _Entry(cq.name, "cq", cq, state=RUNNING)
            entry.last_error = "shared CQ: stream-level supervision only"
            self._register(entry)
            return entry
        entry = _Entry(cq.name, "cq", cq, active_table=active_table,
                       stime_column=stime_column, checkpointer=checkpointer)
        self._register(entry)
        self._wrap_cq(entry)
        return entry

    def adopt_channel(self, channel) -> _Entry:
        """Supervise one channel: bounded retry with exponential backoff,
        then quarantine of the failed batch."""
        if id(channel) in self._by_target:
            return self._by_target[id(channel)]
        entry = _Entry(channel.name, "channel", channel)
        self._register(entry)
        self._wrap_channel(entry)
        # give the channel's source CQ an active table to recover from
        source_cq = getattr(channel.source, "cq", None)
        if source_cq is not None:
            cq_entry = self._by_target.get(id(source_cq))
            if cq_entry is not None and cq_entry.active_table is None:
                cq_entry.active_table = channel.table
                cq_entry.stime_column = _guess_stime_column(channel.table)
        return entry

    def adopt_stream(self, stream: BaseStream) -> _Entry:
        """Supervise one base stream: subscriber errors during fan-out are
        quarantined per tuple instead of propagating to the inserter, and
        shed tuples are dead-lettered."""
        if id(stream) in self._by_target:
            return self._by_target[id(stream)]
        entry = _Entry(stream.name, "stream", stream)
        self._register(entry)

        def on_errors(row, event_time, errors):
            entry.failures += len(errors)
            entry.state = DEGRADED
            for consumer, exc in errors:
                entry.last_error = f"{type(exc).__name__}: {exc}"
                who = type(consumer).__name__ if consumer is not None \
                    else "injected"
                self.quarantine(
                    stream.name, SUBSCRIBER_ERROR,
                    f"{who}: {exc}",
                    [row] if row is not None else [],
                    open_time=event_time, close_time=event_time)

        def on_shed(row, event_time, reason):
            self.quarantine(stream.name, LOAD_SHED, reason, [row],
                            open_time=event_time, close_time=event_time)

        stream.error_handler = on_errors
        stream.shed_handler = on_shed
        return entry

    def release_stream(self, stream: BaseStream) -> None:
        stream.error_handler = None
        stream.shed_handler = None

    def _register(self, entry: _Entry) -> None:
        self._entries.append(entry)
        self._by_target[id(entry.target)] = entry

    # ------------------------------------------------------------------
    # CQ wrapping and restart
    # ------------------------------------------------------------------

    def _wrap_cq(self, entry: _Entry) -> None:
        cq = entry.target

        def guard(original):
            def guarded(rows, open_time, close_time):
                try:
                    original(rows, open_time, close_time)
                except Exception as exc:
                    self._cq_failure(entry, rows, open_time, close_time, exc)
                else:
                    if entry.consecutive_failures:
                        entry.consecutive_failures = 0
                    if entry.state == DEGRADED:
                        entry.state = RUNNING
            return guarded

        if cq._ports is not None:
            # two-stream join: the port lambdas resolve _on_joint at call
            # time, so an instance attribute intercepts every evaluation
            original_joint = cq._on_joint

            def guarded_joint(index, rows, open_time, close_time):
                try:
                    original_joint(index, rows, open_time, close_time)
                except Exception as exc:
                    self._cq_failure(entry, rows, open_time, close_time, exc)
                else:
                    if entry.consecutive_failures:
                        entry.consecutive_failures = 0
                    if entry.state == DEGRADED:
                        entry.state = RUNNING
            cq._on_joint = guarded_joint
        elif cq._window_op is not None:
            cq._window_op.sink = guard(cq._window_op.sink)
        else:
            # window-less transform: the stream calls cq.on_tuple per row
            original_tuple = cq.on_tuple

            def guarded_tuple(row, event_time):
                try:
                    original_tuple(row, event_time)
                except Exception as exc:
                    self._cq_failure(entry, [row], event_time, event_time,
                                     exc, kind=POISON_TUPLE)
                else:
                    if entry.consecutive_failures:
                        entry.consecutive_failures = 0
                    if entry.state == DEGRADED:
                        entry.state = RUNNING
            cq.on_tuple = guarded_tuple

    def _cq_failure(self, entry: _Entry, rows, open_time, close_time, exc,
                    kind: str = POISON_WINDOW) -> None:
        entry.failures += 1
        entry.consecutive_failures += 1
        entry.state = DEGRADED
        entry.last_error = f"{type(exc).__name__}: {exc}"
        self.quarantine(entry.name, kind, entry.last_error, rows,
                        open_time, close_time)
        if entry.consecutive_failures >= self.policy.restart_limit:
            self._restart_cq(entry)

    def _restart_cq(self, entry: _Entry) -> None:
        """Rebuild a repeatedly-failing CQ through the recovery paths."""
        if entry.restarts >= self.policy.max_restarts:
            self._quarantine_cq(entry, "max_restarts exceeded")
            return
        entry.state = RESTARTING
        entry.restarts += 1
        old = entry.target
        try:
            old.stop()
            fresh = self._build_replacement(old)
            try:
                recovered = self._recover(entry, fresh)
            except Exception as exc:
                # replaying the tail re-executed the very failure that
                # forced the restart (a poison window in the replay
                # range); give up on recovery and start cold instead of
                # flapping forever on the same data
                self.quarantine(
                    entry.name, POISON_WINDOW,
                    f"failure replayed during recovery: {exc}", [])
                fresh = self._build_replacement(old)
                recovered = False
            fresh.attach()
        except Exception as exc:  # restart itself failed
            self._quarantine_cq(entry, f"restart failed: {exc}")
            return
        self._rebind(entry, old, fresh)
        if not recovered:
            self.quarantine(
                entry.name, RESTART_LOSS,
                "cold restart: no checkpoint or active table to recover "
                "from; in-flight window state was lost", [])
        entry.target = fresh
        entry.consecutive_failures = 0
        entry.state = RUNNING
        self._by_target.pop(id(old), None)
        self._by_target[id(fresh)] = entry
        self._wrap_cq(entry)

    def _build_replacement(self, old) -> ContinuousQuery:
        fresh = ContinuousQuery(
            old.name, old.select, self.runtime.catalog,
            self.runtime.txn_manager, emit_empty=old.emit_empty,
            params=old.params)
        fresh.faults = old.faults
        fresh._sinks = old._sinks  # keep subscriptions/derived/channels
        # event-time wiring rides along: corrections keep flowing to the
        # same channels/subscriptions and late rows to the same quarantine
        fresh._correction_sinks = old._correction_sinks
        fresh.late_handler = old.late_handler
        return fresh

    def _recover(self, entry: _Entry, fresh: ContinuousQuery) -> bool:
        """Recover runtime state: checkpoint first, then active table."""
        if self.wal is not None \
                and self.wal.latest_checkpoint(fresh.name) is not None:
            try:
                CheckpointManager.recover(fresh, self.wal)
                return True
            except RecoveryError:
                pass
        if entry.active_table is not None and entry.stime_column is not None:
            try:
                recover_from_active_table(
                    fresh, entry.active_table, self.runtime.txn_manager,
                    entry.stime_column)
                return True
            except RecoveryError:
                pass
        return False

    def _rebind(self, entry: _Entry, old, fresh) -> None:
        """Point everything that referenced the old CQ at the fresh one."""
        if old.name in self.runtime._cqs:
            self.runtime._cqs[old.name] = fresh
        for derived in self.runtime._derived_order:
            if derived.cq is old:
                derived.cq = fresh
        if entry.checkpointer is not None:
            # its _on_window sink travelled over with old._sinks
            entry.checkpointer.cq = fresh

    def _quarantine_cq(self, entry: _Entry, reason: str) -> None:
        entry.state = QUARANTINED
        entry.last_error = reason
        try:
            entry.target.stop()
        except Exception:
            pass
        self.quarantine(entry.name, POISON_WINDOW,
                        f"CQ quarantined: {reason}", [])

    # ------------------------------------------------------------------
    # channel wrapping
    # ------------------------------------------------------------------

    def _wrap_channel(self, entry: _Entry) -> None:
        channel = entry.target
        original = channel.on_batch
        policy = self.policy

        def guarded(rows, open_time, close_time):
            delay = policy.backoff_base
            for attempt in range(policy.channel_retry_limit + 1):
                try:
                    original(rows, open_time, close_time)
                except Exception as exc:
                    entry.last_error = f"{type(exc).__name__}: {exc}"
                    if attempt == policy.channel_retry_limit:
                        entry.failures += 1
                        entry.state = DEGRADED
                        self.quarantine(
                            entry.name, CHANNEL_WRITE,
                            f"gave up after {attempt + 1} attempts: {exc}",
                            rows, open_time, close_time)
                        return
                    entry.retries += 1
                    entry.backoff_seconds += delay
                    if self._sleep_fn is not None:
                        self._sleep_fn(delay)
                    delay *= policy.backoff_factor
                else:
                    if entry.state == DEGRADED:
                        entry.state = RUNNING
                    return
        channel.on_batch = guarded

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def entries(self) -> List[_Entry]:
        return list(self._entries)

    def entry_for(self, target) -> Optional[_Entry]:
        return self._by_target.get(id(target))

    def status_rows(self) -> List[tuple]:
        """Rows of the ``repro_supervisor_status`` system view."""
        out = []
        for e in self._entries:
            out.append((
                e.name, e.kind, e.state, e.failures,
                e.consecutive_failures, e.restarts, e.retries,
                round(e.backoff_seconds, 6), e.dead_letters, e.last_error,
            ))
        return out

    def dead_letter_rows(self) -> List[tuple]:
        """Rows of the ``repro_dead_letters`` system view."""
        out = []
        for letter in self.dead_letter_log:
            out.append((
                letter.seq, letter.source, letter.kind, letter.reason,
                len(letter.rows), repr(letter.rows)[:2048],
                letter.open_time, letter.close_time,
            ))
        return out


def _guess_stime_column(table) -> Optional[str]:
    """Best-effort window-close column of an active table: the last
    timestamp column (channels archive ``cq_close(*)`` there by
    convention in every example and benchmark)."""
    candidate = None
    for column in table.schema:
        if isinstance(column.datatype, TimestampType):
            candidate = column.name
    return candidate
