"""StreamingRuntime: owns all live streaming objects of a database.

Creates base streams, derived streams (always-on CQs, Example 3),
ad-hoc CQs (returned to the client as subscriptions), and channels
(Example 4).  When slice sharing is enabled, eligible aggregate CQs are
routed onto a :class:`~repro.streaming.shared.SharedSliceAggregator`
instead of the generic per-window path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.catalog import catalog as cat
from repro.catalog.schema import Schema
from repro.errors import StreamingError, UnknownObjectError
from repro.sql import ast
from repro.streaming.channels import Channel
from repro.streaming.cq import ContinuousQuery
from repro.streaming.shared import (
    SharedContinuousQuery,
    build_aggregator,
    sharing_signature,
)
from repro.streaming.streams import BaseStream, DerivedStream


class StreamingRuntime:
    """The always-on half of a stream-relational database."""

    def __init__(self, catalog, txn_manager, share_slices: bool = False,
                 emit_empty_windows: bool = True,
                 default_retention: Optional[float] = None,
                 disorder_policy: str = "raise",
                 default_slack: float = 0.0,
                 backpressure_policy: Optional[str] = None,
                 high_water_mark: Optional[int] = None,
                 vectorize: bool = True):
        self.catalog = catalog
        self.txn_manager = txn_manager
        self.share_slices = share_slices
        self.vectorize = vectorize
        self.emit_empty_windows = emit_empty_windows
        self.default_retention = default_retention
        self.disorder_policy = disorder_policy
        self.default_slack = default_slack
        self.backpressure_policy = backpressure_policy
        self.high_water_mark = high_water_mark
        self.supervisor = None  # set by Database.enable_supervision
        self.faults = None      # optional FaultInjector, set by Database
        self.obs = None         # Observability facade, set by Database
        # fn(stream, kind, row, event_time) wired onto every base stream
        # when replication logging is enabled (Database sets this)
        self.stream_logger = None
        # (sender, seq) of the idempotent ingest batch being applied, if
        # any; the replication logger tags each row's WAL record with it
        # so recovery can drop rows of a batch whose dedup marker never
        # became durable (Database.ingest_batch sets/clears this)
        self.current_batch = None
        self._cqs: Dict[str, object] = {}
        self._aggregators: Dict[str, list] = {}
        self._derived_order: List[DerivedStream] = []
        self._counter = 0

    # -- stream objects ---------------------------------------------------------

    def create_base_stream(self, name: str, schema: Schema,
                           retention: Optional[float] = None,
                           slack: Optional[float] = None,
                           watermark_bound: Optional[float] = None,
                           partition_by: Optional[str] = None
                           ) -> BaseStream:
        stream = BaseStream(
            name, schema,
            disorder_policy=self.disorder_policy,
            retention=retention if retention is not None
            else self.default_retention,
            # an event-time stream accepts out-of-order rows directly;
            # the engine-wide slack reorder buffer must stay out of its way
            slack=(0.0 if watermark_bound is not None
                   else slack if slack is not None else self.default_slack),
            backpressure_policy=self.backpressure_policy,
            high_water_mark=self.high_water_mark,
            watermark_bound=watermark_bound,
            partition_by=partition_by,
        )
        stream.faults = self.faults
        stream.replication_log = self.stream_logger
        if self.obs is not None:
            self.obs.bind_stream(stream)
        self.catalog.add_relation(name, cat.STREAM, stream)
        if self.supervisor is not None:
            self.supervisor.adopt_stream(stream)
        return stream

    def create_derived_stream(self, name: str, select: ast.Select,
                              text: str = "") -> DerivedStream:
        """CREATE STREAM name AS SELECT ... — instantiated immediately
        and runs until dropped ("always on", Section 3.2)."""
        cq = self._make_cq(select, name=f"derived:{name}")
        derived = DerivedStream(name, cq.output_schema, text,
                                retention=self.default_retention)
        derived.cq = cq
        cq.add_sink(derived.publish)
        if getattr(cq, "is_event_time", None) is not None \
                and cq.is_event_time():
            cq.add_correction_sink(derived.publish_correction)
        cq.attach()
        self.catalog.add_relation(name, cat.DERIVED_STREAM, derived)
        self._cqs[cq.name] = cq
        self._derived_order.append(derived)
        if self.supervisor is not None:
            self.supervisor.adopt_cq(cq)
        return derived

    def drop_stream(self, name: str) -> None:
        kind = self.catalog.relation_kind(name)
        obj = self.catalog.drop_relation(name)
        if kind == cat.DERIVED_STREAM:
            if obj.cq is not None:
                obj.cq.stop()
                self._cqs.pop(obj.cq.name, None)
            if obj in self._derived_order:
                self._derived_order.remove(obj)

    # -- continuous queries --------------------------------------------------------

    def create_cq(self, select: ast.Select, name: Optional[str] = None,
                  params=None):
        """Instantiate and attach a CQ; returns the CQ object."""
        cq = self._make_cq(select, name, params)
        cq.attach()
        self._cqs[cq.name] = cq
        if self.supervisor is not None:
            self.supervisor.adopt_cq(cq)
        return cq

    def _make_cq(self, select: ast.Select, name: Optional[str] = None,
                 params=None):
        if name is None:
            self._counter += 1
            name = f"cq_{self._counter}"
        # parameterized CQs take the generic path (the shared aggregator
        # compiles expressions once for all consumers, without params),
        # as do event-time CQs: the shared aggregator closes slices on
        # arrival order, which event-time semantics forbids
        if self.share_slices and params is None \
                and getattr(select, "emit", None) is None:
            analysis = sharing_signature(select, self.catalog)
            if analysis is not None:
                shared_source = self.catalog.get_relation(
                    analysis.stream_name)
                if getattr(shared_source, "tracker", None) is None:
                    return self._make_shared_cq(name, select, analysis)
        cq = ContinuousQuery(name, select, self.catalog, self.txn_manager,
                             self.emit_empty_windows, params=params,
                             obs=self.obs, vectorize=self.vectorize)
        cq.faults = self.faults
        cq.late_handler = self._quarantine_late
        return cq

    def _quarantine_late(self, cq_name: str, row, event_time: float,
                         watermark: float, expired: bool) -> None:
        """Dead-letter one late row with the structured late-event
        reason (supervisor's quarantine record shape).  Without a
        supervisor the dead-letter policy degrades to drop-with-count."""
        supervisor = self.supervisor
        if supervisor is None:
            return
        from repro.eventtime.lateness import LATE_EVENT, late_reason
        supervisor.quarantine(
            cq_name, LATE_EVENT, late_reason(event_time, watermark, expired),
            [row], open_time=event_time, close_time=watermark)

    def _make_shared_cq(self, name, select, analysis):
        stream = self.catalog.get_relation(analysis.stream_name)
        candidates = self._aggregators.setdefault(analysis.signature, [])
        aggregator = None
        for candidate in candidates:
            if candidate.compatible(analysis.window.visible,
                                    analysis.window.advance):
                aggregator = candidate
                break
        if aggregator is None:
            aggregator = build_aggregator(analysis, stream)
            stream.subscribe(aggregator)
            candidates.append(aggregator)
        cq = SharedContinuousQuery(name, analysis, aggregator, stream, select)
        if self.obs is not None:
            cq.obs = self.obs
            from repro.obs.service import instrument_plan
            instrument_plan(cq._post_plan)
        return cq

    def stop_cq(self, cq) -> None:
        cq.stop()
        self._cqs.pop(cq.name, None)

    def cqs(self):
        return dict(self._cqs)

    def aggregators(self):
        """All live shared aggregators (for the E4/A1 benches)."""
        out = []
        for group in self._aggregators.values():
            out.extend(group)
        return out

    # -- channels -----------------------------------------------------------------

    def create_channel(self, name: str, source_name: str, table,
                       mode: str) -> Channel:
        kind = self.catalog.relation_kind(source_name)
        if kind not in (cat.STREAM, cat.DERIVED_STREAM):
            raise UnknownObjectError(
                f"channel source {source_name!r} is not a stream")
        source = self.catalog.get_relation(source_name)
        channel = Channel(name, source, table, self.txn_manager, mode)
        channel.faults = self.faults
        if self.obs is not None:
            self.obs.bind_channel(channel)
        channel.attach()
        self.catalog.add_channel(name, channel)
        if self.supervisor is not None:
            self.supervisor.adopt_channel(channel)
        return channel

    def drop_channel(self, name: str) -> None:
        channel = self.catalog.drop_channel(name)
        channel.detach()

    # -- time control ----------------------------------------------------------------

    def heartbeat_all(self, event_time: float) -> None:
        """Advance every base stream's clock (punctuation broadcast)."""
        for _name, stream in self.catalog.relations(cat.STREAM):
            stream.advance_to(event_time)

    def flush_all(self) -> None:
        """End-of-input: emit every pending window, upstream first."""
        for _name, stream in self.catalog.relations(cat.STREAM):
            stream.flush()
        for derived in self._derived_order:
            derived.flush()

    def get_stream(self, name: str) -> BaseStream:
        kind = self.catalog.relation_kind(name)
        if kind == cat.STREAM:
            return self.catalog.get_relation(name)
        if kind == cat.DERIVED_STREAM:
            raise StreamingError(
                f"{name!r} is a derived stream; data cannot be inserted into it"
            )
        raise UnknownObjectError(f"stream {name!r} does not exist")
