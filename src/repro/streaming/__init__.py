"""The streaming engine: streams, windows, continuous queries, shared
slice aggregation, channels/active tables, and recovery.

This package implements the paper's Sections 2–4: windows turn a stream
into a sequence of relations (Figure 1); continuous queries re-run a
relational plan per window (RSTREAM semantics); derived streams are
always-on CQs (Example 3); channels persist them into active tables
(Example 4); aggregate CQs share per-slice partial state (Section 2.2,
refs [4, 12]); and runtime state recovers either from checkpoints or by
the paper's preferred rebuild-from-active-tables (Section 4).
"""

from repro.streaming.streams import BaseStream, DerivedStream, StreamConsumer
from repro.streaming.windows import (
    RowWindowOperator,
    TimeWindowOperator,
    WindowCountOperator,
    WindowSpec,
)
from repro.streaming.cq import ContinuousQuery, CQStats
from repro.streaming.channels import Channel
from repro.streaming.views import StreamingView
from repro.streaming.shared import SharedSliceAggregator, sharing_signature
from repro.streaming.runtime import StreamingRuntime
from repro.streaming.recovery import (
    CheckpointManager,
    capture_window_state,
    recover_from_active_table,
    restore_window_state,
)

__all__ = [
    "CheckpointManager",
    "capture_window_state",
    "recover_from_active_table",
    "restore_window_state",
    "BaseStream",
    "DerivedStream",
    "StreamConsumer",
    "WindowSpec",
    "TimeWindowOperator",
    "RowWindowOperator",
    "WindowCountOperator",
    "ContinuousQuery",
    "CQStats",
    "Channel",
    "StreamingView",
    "SharedSliceAggregator",
    "sharing_signature",
    "StreamingRuntime",
]
