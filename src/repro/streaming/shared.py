"""Shared slice aggregation: "processing multiple continuous queries in a
shared manner" (Section 2.2; paper refs [4] Arasu/Widom and [12]
Krishnamurthy/Wu/Franklin "On-the-fly sharing for streamed aggregation").

The idea: many aggregate CQs over the same stream differ only in their
window extents.  Instead of each CQ buffering the stream and re-scanning
it per window (the generic path), the engine aggregates every arriving
tuple exactly once into the current *slice* (a pane of width
gcd(visible, advance)); at each slice boundary the finished slice's
partial aggregate states are stored, and any CQ whose window closes at
that boundary merges the slices it can see.  Per-tuple work is therefore
independent of how many CQs are attached — which is precisely the
shape experiment E4 measures.

Eligibility: a CQ shares when it is a single-stream aggregate with a time
window — ``SELECT <group cols & aggregates> FROM stream <window>
[WHERE over stream cols] GROUP BY ... [HAVING/ORDER BY/LIMIT]``.  The
HAVING/projection/ORDER BY/LIMIT tail runs per-CQ on the merged rows.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import StreamingError, WindowError
from repro.exec import operators as ops
from repro.exec.expressions import RowLayout, compile_expr, infer_type
from repro.exec.planner import (
    PlanningError,
    _and_all,
    _contains_aggregate,
    _covered,
    _expand_stars,
    finish_projection,
    make_agg_specs,
    post_agg_layout,
    rewrite_aggregates,
    split_conjuncts,
)
from repro.sql import ast
from repro.streaming.streams import StreamConsumer
from repro.streaming.windows import WindowSpec

_EPSILON = 1e-9


def _as_multiple(value: float, unit: float) -> Optional[int]:
    """``value / unit`` when it is (nearly) a positive integer, else None."""
    ratio = value / unit
    nearest = round(ratio)
    if nearest >= 1 and abs(ratio - nearest) < 1e-6:
        return nearest
    return None


def _time_gcd(a: float, b: float) -> float:
    """gcd of two durations, computed on microsecond integers."""
    return math.gcd(round(a * 1e6), round(b * 1e6)) / 1e6


@dataclass
class SharingAnalysis:
    """What the eligibility analyzer extracts from a shareable CQ."""

    stream_name: str
    alias: str
    window: WindowSpec
    where: Optional[ast.Expr]
    group_exprs: List[ast.Expr]
    agg_calls: List[ast.FunctionCall]
    items: List[ast.SelectItem]           # original (star-expanded)
    rewritten_items: List[ast.SelectItem]
    rewritten_having: Optional[ast.Expr]
    rewritten_order: List[ast.Expr]
    signature: str


def sharing_signature(select: ast.Select, catalog) -> Optional[SharingAnalysis]:
    """Analyze a CQ for slice sharing; None when the shape doesn't fit."""
    from repro.catalog import catalog as cat

    from_clause = select.from_clause
    if not isinstance(from_clause, ast.TableRef):
        return None
    if from_clause.window is None or from_clause.window.is_row_based() \
            or from_clause.window.is_window_count():
        return None
    kind = catalog.relation_kind(from_clause.name)
    if kind not in (cat.STREAM, cat.DERIVED_STREAM):
        return None
    stream = catalog.get_relation(from_clause.name)
    layout = RowLayout([
        (from_clause.alias or from_clause.name, c.name, c.datatype)
        for c in stream.schema
    ])

    try:
        items = _expand_stars(select.items, layout)
    except Exception:
        return None
    has_aggs = (bool(select.group_by)
                or any(_contains_aggregate(i.expr) for i in items))
    if not has_aggs:
        return None
    if select.where is not None and not _covered(select.where, layout):
        return None
    for expr in select.group_by:
        if not _covered(expr, layout):
            return None
    try:
        rewritten_items, rewritten_having, rewritten_order, agg_calls = \
            rewrite_aggregates(list(select.group_by), items, select.having,
                               [o.expr for o in select.order_by])
    except PlanningError:
        return None
    for call in agg_calls:
        for arg in call.args:
            if not isinstance(arg, ast.Star) and not _covered(arg, layout):
                return None

    window = WindowSpec.from_clause(from_clause.window)
    if not math.isfinite(window.visible):
        return None  # cumulative windows don't slice; generic path
    signature = "|".join([
        from_clause.name.lower(),
        (from_clause.alias or from_clause.name).lower(),
        repr(select.where),
        repr(list(select.group_by)),
        repr(agg_calls),
    ])
    return SharingAnalysis(
        stream_name=from_clause.name,
        alias=from_clause.alias or from_clause.name,
        window=window,
        where=select.where,
        group_exprs=list(select.group_by),
        agg_calls=agg_calls,
        items=items,
        rewritten_items=rewritten_items,
        rewritten_having=rewritten_having,
        rewritten_order=rewritten_order,
        signature=signature,
    )


@dataclass
class SharedStats:
    """Aggregator-level counters (the E4 evidence)."""

    tuples_in: int = 0
    tuples_filtered: int = 0
    agg_adds: int = 0
    state_merges: int = 0
    slices_closed: int = 0
    consumer_fires: int = 0


@dataclass
class _Consumer:
    visible: float
    advance: float
    visible_slices: int
    advance_slices: int
    sink: Callable
    fired_through: int = -1  # absolute slice number of the last fire


class SharedSliceAggregator(StreamConsumer):
    """One per (stream, filter, group, aggs, slice grid): aggregates each
    tuple once, serves every attached window."""

    def __init__(self, signature: str, filter_fn: Optional[Callable],
                 group_fns: List[Callable], agg_specs, slice_width: float):
        if slice_width <= 0:
            raise WindowError("slice width must be positive")
        self.signature = signature
        self.slice_width = float(slice_width)
        self._filter_fn = filter_fn
        self._group_fns = group_fns
        self._agg_specs = agg_specs
        self._consumers: List[_Consumer] = []
        self._current: dict = {}
        self._slices: dict = {}  # absolute slice number -> {key: states}
        self._next_slice: Optional[int] = None  # absolute number to close next
        self.stats = SharedStats()

    # -- consumers ----------------------------------------------------------

    def compatible(self, visible: float, advance: float) -> bool:
        return (_as_multiple(visible, self.slice_width) is not None
                and _as_multiple(advance, self.slice_width) is not None)

    def add_consumer(self, visible: float, advance: float,
                     sink: Callable) -> _Consumer:
        visible_slices = _as_multiple(visible, self.slice_width)
        advance_slices = _as_multiple(advance, self.slice_width)
        if visible_slices is None or advance_slices is None:
            raise StreamingError(
                "window extents are not multiples of the shared slice width"
            )
        consumer = _Consumer(visible, advance, visible_slices,
                             advance_slices, sink)
        self._consumers.append(consumer)
        return consumer

    def remove_consumer(self, consumer: _Consumer) -> None:
        if consumer in self._consumers:
            self._consumers.remove(consumer)

    @property
    def consumer_count(self) -> int:
        return len(self._consumers)

    def _max_visible_slices(self) -> int:
        if not self._consumers:
            return 1
        return max(c.visible_slices for c in self._consumers)

    # -- stream consumption -----------------------------------------------------

    def on_tuple(self, row: tuple, event_time: float) -> None:
        if self._next_slice is None:
            # same grid arithmetic as TimeWindowOperator._start_at, so the
            # shared and generic paths bucket boundary tuples identically
            self._next_slice = math.floor(
                event_time / self.slice_width) + 1
        self._close_through(event_time)
        self.stats.tuples_in += 1
        if self._filter_fn is not None and \
                self._filter_fn(row, None) is not True:
            self.stats.tuples_filtered += 1
            return
        key = tuple(g(row, None) for g in self._group_fns)
        states = self._current.get(key)
        if states is None:
            states = [agg.create() for agg, _ in self._agg_specs]
            self._current[key] = states
        for i, (agg, arg_fn) in enumerate(self._agg_specs):
            value = arg_fn(row, None) if arg_fn is not None else None
            states[i] = agg.add(states[i], value)
            self.stats.agg_adds += 1

    def on_heartbeat(self, event_time: float) -> None:
        if self._next_slice is None:
            return
        self._close_through(event_time)

    def on_flush(self) -> None:
        if self._next_slice is None:
            return
        if self._current:
            self._close_slice(self._next_slice)
        last = self._next_slice - 1
        for consumer in self._consumers:
            target = math.ceil(last / consumer.advance_slices) \
                * consumer.advance_slices
            if target > consumer.fired_through:
                self._fire(consumer, target)

    # -- slices -------------------------------------------------------------------

    def _close_through(self, event_time: float) -> None:
        # strict <=, matching TimeWindowOperator: a tuple exactly at the
        # boundary proves the slice complete and belongs to the next one
        while self._next_slice * self.slice_width <= event_time:
            self._close_slice(self._next_slice)

    def _close_slice(self, number: int) -> None:
        self._slices[number] = self._current
        self._current = {}
        self._next_slice = number + 1
        self.stats.slices_closed += 1
        keep_from = number - self._max_visible_slices() + 1
        for old in [n for n in self._slices if n < keep_from]:
            del self._slices[old]
        for consumer in self._consumers:
            if number % consumer.advance_slices == 0:
                self._fire(consumer, number)

    def _fire(self, consumer: _Consumer, slice_number: int) -> None:
        close_time = slice_number * self.slice_width
        merged: dict = {}
        for number in range(slice_number - consumer.visible_slices + 1,
                            slice_number + 1):
            partials = self._slices.get(number)
            if not partials:
                continue
            for key, states in partials.items():
                existing = merged.get(key)
                if existing is None:
                    merged[key] = list(states)
                else:
                    for i, (agg, _arg) in enumerate(self._agg_specs):
                        existing[i] = agg.merge(existing[i], states[i])
                        self.stats.state_merges += 1
        if not merged and not self._group_fns:
            # scalar-aggregate semantics: an empty window still produces
            # one row (count(*) = 0), matching the generic path
            merged[()] = [agg.create() for agg, _ in self._agg_specs]
        rows = [
            key + tuple(agg.result(state)
                        for (agg, _), state in zip(self._agg_specs, states))
            for key, states in merged.items()
        ]
        consumer.fired_through = slice_number
        self.stats.consumer_fires += 1
        consumer.sink(rows, close_time - consumer.visible, close_time)


class SharedContinuousQuery:
    """A CQ served by a :class:`SharedSliceAggregator`.

    Presents the same interface as
    :class:`~repro.streaming.cq.ContinuousQuery` (attach/stop/add_sink/
    stats/output schema) so the runtime and subscriptions don't care
    which path a CQ took.
    """

    def __init__(self, name: str, analysis: SharingAnalysis,
                 aggregator: SharedSliceAggregator, stream, select: ast.Select):
        from repro.streaming.cq import CQStats

        self.name = name
        self.select = select
        self.analysis = analysis
        self.aggregator = aggregator
        self.stream = stream
        self.stats = CQStats()
        self.shared = True
        self._sinks = []
        self._holder: list = []
        self._consumer = None
        self.obs = None  # Observability facade, set by the runtime

        stream_layout = RowLayout([
            (select.from_clause.alias or analysis.stream_name,
             c.name, c.datatype)
            for c in stream.schema
        ])
        post_layout = post_agg_layout(
            analysis.group_exprs, analysis.agg_calls, stream_layout)

        plan = ops.RowSource(lambda: self._holder, "shared-aggregates")
        if analysis.rewritten_having is not None:
            plan = ops.Filter(
                plan, compile_expr(analysis.rewritten_having, post_layout))
        compiled = [compile_expr(i.expr, post_layout)
                    for i in analysis.rewritten_items]
        from repro.exec.expressions import default_name
        self._output_layout = RowLayout([
            (None,
             item.alias or default_name(original.expr),
             infer_type(item.expr, post_layout))
            for item, original in zip(analysis.rewritten_items,
                                      analysis.items)
        ])
        physical = finish_projection(
            select, analysis.items, plan, compiled, self._output_layout,
            analysis.rewritten_order, post_layout)
        self._post_plan = physical.root

        self.output_names = self._output_layout.names()

    @property
    def window_spec(self) -> WindowSpec:
        return self.analysis.window

    @property
    def output_schema(self):
        from repro.catalog.schema import Column, Schema
        return Schema([
            Column(n, t) for (_a, n, t) in self._output_layout.entries
        ])

    def attach(self) -> None:
        self._consumer = self.aggregator.add_consumer(
            self.analysis.window.visible, self.analysis.window.advance,
            self._on_aggregated)

    def stop(self) -> None:
        if self._consumer is not None:
            self.aggregator.remove_consumer(self._consumer)
            self._consumer = None

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def _on_aggregated(self, rows, open_time: float, close_time: float) -> None:
        self._holder = rows
        ctx = {"cq_close": close_time, "cq_open": open_time}
        obs = self.obs
        started = time.perf_counter() if obs is not None else 0.0
        out = list(self._post_plan.rows(ctx))
        self._holder = []
        self.stats.windows_evaluated += 1
        self.stats.rows_scanned += len(rows)
        self.stats.rows_out += len(out)
        self.stats.last_close = close_time
        for sink in self._sinks:
            sink(out, open_time, close_time)
        if obs is not None:
            duration = time.perf_counter() - started
            st = self.stats
            st.last_window_seconds = duration
            st.total_window_seconds += duration
            if duration > st.max_window_seconds:
                st.max_window_seconds = duration
            obs.on_window_close(self, duration, close_time)

    def explain(self, analyze: bool = False) -> str:
        return ("SharedSliceAggregator\n"
                + self._post_plan.explain(1, analyze))


def build_aggregator(analysis: SharingAnalysis, stream) -> SharedSliceAggregator:
    """Construct the aggregator for an analysis (first CQ of its group).

    Expressions compile against the first query's alias; the signature
    includes the alias, so CQs can only join this aggregator when their
    expressions are literally identical.
    """
    layout = RowLayout([
        (analysis.alias, c.name, c.datatype) for c in stream.schema
    ])
    filter_fn = None
    if analysis.where is not None:
        conjuncts = split_conjuncts(analysis.where)
        filter_fn = compile_expr(_and_all(conjuncts), layout)
    group_fns = [compile_expr(g, layout) for g in analysis.group_exprs]
    agg_specs = make_agg_specs(analysis.agg_calls, layout)
    slice_width = _time_gcd(analysis.window.visible, analysis.window.advance)
    return SharedSliceAggregator(
        analysis.signature, filter_fn, group_fns, agg_specs, slice_width)
