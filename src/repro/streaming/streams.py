"""Streams: ordered, unbounded relations (the paper's Section 3.1).

A :class:`BaseStream` is a raw ingest point created by ``CREATE STREAM``
(Example 1): rows are coerced against its schema, ordered by the CQTIME
column, and pushed to subscribers (window operators, transforms,
channels).  A :class:`DerivedStream` re-publishes the output of an
always-on continuous query (Example 3) to its own subscribers, window by
window.

Streams optionally retain a replayable tail (``retention`` seconds); the
recovery strategies in :mod:`repro.streaming.recovery` use it the way a
production system would re-read a message broker after a crash.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from repro.catalog.schema import Schema
from repro.errors import BackpressureError, OutOfOrderError, StreamingError
from repro.eventtime.watermark import WatermarkTracker

RAISE = "raise"
DROP = "drop"

# backpressure policies for a full reorder buffer (high-water mark hit)
BP_BLOCK = "block"
BP_SHED_OLDEST = "shed-oldest"
BP_RAISE = "raise"
BACKPRESSURE_POLICIES = (BP_BLOCK, BP_SHED_OLDEST, BP_RAISE)


class StreamConsumer:
    """Subscriber protocol.  Subclasses override what they need."""

    def on_tuple(self, row: tuple, event_time: float) -> None:
        """One stream tuple arrived."""

    def on_heartbeat(self, event_time: float) -> None:
        """Time advanced to ``event_time`` with no tuple (punctuation)."""

    def on_flush(self) -> None:
        """The stream ended; emit any pending windows."""


class BaseStream:
    """A raw stream: schema, CQTIME ordering, subscribers, retention.

    ``slack`` enables bounded out-of-order ingest (the paper assumes
    perfectly ordered streams; real feeds are not): tuples are held in a
    reorder buffer and released in timestamp order once the raw clock has
    advanced ``slack`` seconds past them.  Consumers always see a
    non-decreasing sequence; tuples later than the slack bound fall back
    to the disorder policy (raise or drop).
    """

    def __init__(self, name: str, schema: Schema,
                 disorder_policy: str = RAISE,
                 retention: Optional[float] = None,
                 slack: float = 0.0,
                 backpressure_policy: Optional[str] = None,
                 high_water_mark: Optional[int] = None,
                 watermark_bound: Optional[float] = None,
                 partition_by: Optional[str] = None):
        self.name = name
        self.schema = schema
        cqtime = schema.cqtime_index()
        if cqtime is None:
            raise StreamingError(
                f"stream {name!r} has no CQTIME column"
            )
        if backpressure_policy is not None \
                and backpressure_policy not in BACKPRESSURE_POLICIES:
            raise StreamingError(
                f"unknown backpressure policy {backpressure_policy!r}; "
                f"choose one of {', '.join(BACKPRESSURE_POLICIES)}"
            )
        self.cqtime_index = cqtime
        self.cqtime_mode = schema.columns[cqtime].cqtime or "user"
        if watermark_bound is not None:
            if slack and slack > 0:
                raise StreamingError(
                    f"stream {name!r}: SLACK and WATERMARK are mutually "
                    "exclusive — slack reorders arrivals, a watermark "
                    "accepts them out of order")
            if self.cqtime_mode == "system":
                raise StreamingError(
                    f"stream {name!r}: a SYSTEM-time stream cannot carry "
                    "a watermark (arrival time is never out of order)")
        self.watermark_bound = watermark_bound
        if partition_by is not None and not schema.has_column(partition_by):
            raise StreamingError(
                f"stream {name!r}: PARTITION BY column "
                f"{partition_by!r} is not in the schema")
        #: declared partition key column (None = unpartitioned); the
        #: single-process engine records it but does not act on it
        self.partition_by = partition_by
        #: event-time mode: None for arrival-order streams
        self.tracker = (WatermarkTracker(watermark_bound)
                        if watermark_bound is not None else None)
        self.disorder_policy = disorder_policy
        self.retention = retention
        self.slack = float(slack)
        self.backpressure_policy = backpressure_policy
        self.high_water_mark = high_water_mark
        self.watermark = float("-inf")   # delivered (post-reorder) clock
        self.raw_watermark = float("-inf")  # max event time ever seen
        self.tuples_in = 0
        self.tuples_dropped = 0
        self.tuples_reordered = 0
        self.tuples_shed = 0       # dropped by the shed-oldest policy
        self.forced_releases = 0   # tuples force-delivered by block policy
        self.delivery_errors = 0   # subscriber exceptions seen in fan-out
        self.slow_deliveries = 0   # stream.slow_consumer crashpoint fires
        self._consumers = []
        self._pending = []  # reorder buffer: heap of (time, seq, row)
        self._seq = 0
        self._tail = deque()  # (event_time, row) kept for replay
        # supervision hooks (set by CQSupervisor.adopt_stream); when
        # error_handler is set, subscriber exceptions are routed there
        # instead of propagating to the inserter
        self.error_handler = None   # fn(row, event_time, [(consumer, exc)])
        self.shed_handler = None    # fn(row, event_time, reason)
        self.faults = None          # optional FaultInjector
        # replication hook (set by Database.enable_replication_logging):
        # fn(stream_name, kind, row_or_None, event_time) called for every
        # delivered tuple and every watermark advance, so a WAL-shipping
        # standby can mirror the stream tail
        self.replication_log = None
        # observability facade (set by Observability.bind_stream);
        # sampled traces of in-flight tuples park here until their
        # window closes.  _trace_countdown is the every-Nth sampling
        # state kept inline so the untraced path costs one int check.
        self.obs = None
        self._trace_countdown = 0
        self._pending_traces = []

    # -- subscription ---------------------------------------------------------

    def subscribe(self, consumer: StreamConsumer) -> None:
        self._consumers.append(consumer)

    def unsubscribe(self, consumer: StreamConsumer) -> None:
        if consumer in self._consumers:
            self._consumers.remove(consumer)

    @property
    def consumers(self):
        return list(self._consumers)

    # -- ingest ---------------------------------------------------------------

    def insert(self, values, at: Optional[float] = None) -> bool:
        """Ingest one row.

        For a USER-time stream the event time is the CQTIME column of the
        row itself; for a SYSTEM-time stream it is ``at`` (the arrival
        clock), stamped into the row.  Returns False when a late tuple is
        dropped under the ``drop`` policy.
        """
        row = list(self.schema.coerce_row(values))
        if self.cqtime_mode == "system":
            arrival = at if at is not None else max(self.watermark, 0.0)
            row[self.cqtime_index] = float(arrival)
        event_time = row[self.cqtime_index]
        if event_time is None:
            raise StreamingError(
                f"stream {self.name!r}: CQTIME value is NULL"
            )
        if self.tracker is not None:
            # event-time mode: out-of-order arrival is legal — windows
            # assign by event time and lateness is the CQ's policy, so
            # every row is delivered immediately; the watermark (not
            # the row) closes windows, broadcast as a heartbeat after
            # delivery so operators judge lateness against the
            # pre-row watermark
            final = tuple(row)
            if event_time < self.watermark:
                self.tuples_reordered += 1
            if event_time > self.raw_watermark:
                self.raw_watermark = event_time
            self.tuples_in += 1
            countdown = self._trace_countdown
            if countdown:
                if countdown == 1:
                    self.obs.start_trace(self, event_time)
                else:
                    self._trace_countdown = countdown - 1
            self._deliver(final, event_time)
            # WatermarkTracker.observe, inlined: on ordered traffic
            # every tuple advances the watermark, so this runs hot
            tracker = self.tracker
            if event_time < tracker.watermark:
                tracker.late_rows += 1
            if event_time > tracker.max_event_time:
                tracker.max_event_time = event_time
                advanced = event_time - tracker.bound
                if advanced > tracker.watermark:
                    tracker.watermark = advanced
                    self.watermark = advanced
                    # derived advances are reconstructed from the insert
                    # records at replay time — no WAL record of their own
                    self._broadcast_heartbeat(advanced, log=False)
            return True
        if event_time < self.watermark:
            if self.disorder_policy == DROP:
                self.tuples_dropped += 1
                return False
            raise OutOfOrderError(
                f"stream {self.name!r}: event time {event_time} is before "
                f"watermark {self.watermark}"
            )
        final = tuple(row)
        if self.slack > 0:
            if event_time < self.raw_watermark:
                self.tuples_reordered += 1
            if self.high_water_mark is not None \
                    and len(self._pending) >= self.high_water_mark:
                if not self._relieve_pressure(final, event_time):
                    return False  # the new tuple itself was shed
            self.raw_watermark = max(self.raw_watermark, event_time)
            heapq.heappush(self._pending, (event_time, self._seq, final))
            self._seq += 1
            self.tuples_in += 1
            countdown = self._trace_countdown
            if countdown:
                if countdown == 1:
                    self.obs.start_trace(self, event_time)
                else:
                    self._trace_countdown = countdown - 1
            self._release(self.raw_watermark - self.slack)
            return True
        self.watermark = max(self.watermark, event_time)
        self.raw_watermark = self.watermark
        self.tuples_in += 1
        countdown = self._trace_countdown
        if countdown:
            if countdown == 1:
                self.obs.start_trace(self, event_time)
            else:
                self._trace_countdown = countdown - 1
        self._deliver(final, event_time)
        return True

    # -- backpressure -----------------------------------------------------------

    def _relieve_pressure(self, row: tuple, event_time: float) -> bool:
        """The reorder buffer is at its high-water mark; apply the
        configured policy.  Returns False when the incoming tuple should
        be discarded instead of buffered (shed-oldest, incoming oldest).
        """
        policy = self.backpressure_policy
        if policy == BP_RAISE or policy is None:
            raise BackpressureError(
                f"stream {self.name!r}: reorder buffer at high-water mark "
                f"({self.high_water_mark} tuples)"
            )
        if policy == BP_SHED_OLDEST:
            # drop the oldest queued tuple — or the incoming one, if it is
            # older than everything queued (it would be popped first anyway)
            if self._pending and self._pending[0][0] <= event_time:
                when, _seq, shed = heapq.heappop(self._pending)
            else:
                when, shed = event_time, row
            self.tuples_shed += 1
            if self.shed_handler is not None:
                self.shed_handler(shed, when, "load-shed")
            return shed is not row
        # BP_BLOCK: the inserter "waits" for the consumers — in this
        # synchronous engine that means force-draining the oldest buffered
        # tuples now, trading slack headroom for bounded memory
        while len(self._pending) >= self.high_water_mark:
            when, _seq, oldest = heapq.heappop(self._pending)
            self.watermark = max(self.watermark, when)
            self.forced_releases += 1
            self._deliver(oldest, when)
        return True

    # -- delivery ---------------------------------------------------------------

    def _deliver(self, row: tuple, event_time: float) -> None:
        self._retain(event_time, row)
        if self.replication_log is not None:
            self.replication_log(self.name, "insert", row, event_time)
        errors = None
        faults = self.faults
        if faults is not None and faults.armed:
            if faults.should("stream.slow_consumer"):
                self.slow_deliveries += 1
            injected = faults.poll("stream.deliver", self.name)
            if injected is not None:
                errors = [(None, injected)]
        # snapshot: a supervised restart may unsubscribe/resubscribe
        # a consumer from inside its own on_tuple
        for consumer in tuple(self._consumers):
            try:
                consumer.on_tuple(row, event_time)
            except Exception as exc:
                # keep fanning out: one raising subscriber must not starve
                # the others; errors are reported after full delivery
                if errors is None:
                    errors = []
                errors.append((consumer, exc))
        if errors is not None:
            self._report_delivery_errors(row, event_time, errors)

    def _report_delivery_errors(self, row, event_time, errors) -> None:
        self.delivery_errors += len(errors)
        if self.error_handler is not None:
            self.error_handler(row, event_time, errors)
            return
        raise errors[0][1]

    def _release(self, threshold: float) -> None:
        """Deliver buffered tuples with event time <= ``threshold``,
        in timestamp order (the delivered watermark trails by slack)."""
        while self._pending and self._pending[0][0] <= threshold:
            event_time, _seq, row = heapq.heappop(self._pending)
            self.watermark = max(self.watermark, event_time)
            self._deliver(row, event_time)

    def insert_many(self, rows, at: Optional[float] = None) -> int:
        """Ingest a batch; returns how many rows were actually accepted.

        Under the shed-oldest backpressure policy a row can be stored and
        then displaced by a later row of the same batch (or displace an
        older buffered tuple).  The return value is net acceptance: rows
        stored minus tuples the batch forced out of the reorder buffer,
        so a caller can tell shed from stored.
        """
        return self.insert_many_counted(rows, at)["accepted"]

    def insert_many_counted(self, rows, at: Optional[float] = None) -> dict:
        """Ingest a batch and account for every row:
        ``{"accepted", "shed", "dropped"}``.

        ``accepted`` is net acceptance (stored minus buffered tuples
        this batch displaced), ``shed`` counts backpressure sheds —
        incoming rows refused plus buffered tuples displaced — and
        ``dropped`` counts rows discarded as too-late under the ``drop``
        disorder policy.  The ingest wire ack reports these numbers, so
        they must add up: accepted + shed + dropped == len(rows).
        """
        fast = self._insert_fast_batch(rows, at)
        if fast is not None:
            return fast
        stored = 0
        submitted = 0
        shed_before = self.tuples_shed
        dropped_before = self.tuples_dropped
        for row in rows:
            submitted += 1
            if self.insert(row, at):
                stored += 1
        rejected = submitted - stored
        dropped_late = self.tuples_dropped - dropped_before
        shed_total = self.tuples_shed - shed_before
        # sheds of incoming rows already show up as insert() == False;
        # only subtract the *buffered* tuples this batch displaced
        shed_incoming = rejected - dropped_late
        shed_buffered = shed_total - shed_incoming
        return {
            "accepted": max(stored - shed_buffered, 0),
            "shed": shed_total,
            "dropped": dropped_late,
        }

    def _insert_fast_batch(self, rows, at: Optional[float]) -> Optional[dict]:
        """Batch ingest without the per-row :meth:`insert` overhead.

        Only the plain configuration qualifies: arrival-ordered traffic
        (no watermark tracker, no slack reorder buffer), unsupervised
        delivery, no armed fault injector.  Any disorder, NULL CQTIME,
        or coercion problem defers to the per-row path, which raises
        (or drops) with exactly the single-insert semantics.  Consumers
        implementing ``on_tuples(rows, times)`` receive the whole sorted
        batch in one call.  Returns None when the batch must take the
        slow path.
        """
        if (self.tracker is not None or self.slack > 0
                or self.error_handler is not None
                or (self.faults is not None and self.faults.armed)):
            return None
        consumers = self._consumers
        batch_capable = all(
            getattr(consumer, "on_tuples", None) is not None
            for consumer in consumers)
        if not batch_capable and len(consumers) > 1:
            # per-row fan-out interleaves consumers row by row; keep
            # those exact semantics (incl. error accumulation) slow
            return None
        cqtime = self.cqtime_index
        try:
            coerced = self.schema.coerce_rows(rows)
        except Exception:
            return None
        n = len(coerced)
        if n == 0:
            return {"accepted": 0, "shed": 0, "dropped": 0}
        if self.cqtime_mode == "system":
            arrival = float(at if at is not None
                            else max(self.watermark, 0.0))
            coerced = [row[:cqtime] + (arrival,) + row[cqtime + 1:]
                       for row in coerced]
            times = [arrival] * n
        else:
            times = [row[cqtime] for row in coerced]
            if any(when is None for when in times):
                return None
            for i in range(1, n):
                if times[i] < times[i - 1]:
                    return None
        if times[0] < self.watermark:
            return None
        final_rows = coerced
        self.watermark = max(self.watermark, times[-1])
        self.raw_watermark = self.watermark
        self.tuples_in += n
        # trace sampling: the batch form of insert()'s every-Nth
        # countdown — trace rows countdown-1, then every interval
        countdown = self._trace_countdown
        if countdown:
            i = countdown - 1
            while i < n:
                self.obs.start_trace(self, times[i])
                countdown = self._trace_countdown  # re-armed interval
                if not countdown:
                    break
                i += countdown
            if countdown:
                self._trace_countdown = i - n + 1
        if self.retention is not None:
            for when, row in zip(times, final_rows):
                self._retain(when, row)
        if self.replication_log is not None:
            log = self.replication_log
            name = self.name
            for when, row in zip(times, final_rows):
                log(name, "insert", row, when)
        if batch_capable:
            for consumer in tuple(consumers):
                try:
                    consumer.on_tuples(final_rows, times)
                except Exception as exc:
                    self._report_delivery_errors(
                        None, times[-1], [(consumer, exc)])
        else:
            for consumer in tuple(consumers):
                for when, row in zip(times, final_rows):
                    try:
                        consumer.on_tuple(row, when)
                    except Exception as exc:
                        self._report_delivery_errors(
                            row, when, [(consumer, exc)])
        return {"accepted": n, "shed": 0, "dropped": 0}

    def advance_to(self, event_time: float) -> None:
        """Heartbeat: assert no tuple before ``event_time`` will arrive.

        With slack, the heartbeat first drains the reorder buffer up to
        ``event_time - slack`` and consumers see that (delayed) clock.
        In event-time mode this is *explicit watermark injection*: the
        source asserts completeness through ``event_time`` and the
        tracker publishes it (monotone).  Unlike observation-derived
        advances, injections are WAL-logged — they are not
        reconstructible from the row records.
        """
        if self.tracker is not None:
            advanced = self.tracker.inject(event_time)
            if advanced is not None:
                self.watermark = advanced
                self._broadcast_heartbeat(advanced)
            return
        if self.slack > 0:
            self.raw_watermark = max(self.raw_watermark, event_time)
            threshold = event_time - self.slack
            self._release(threshold)
            if threshold <= self.watermark:
                return
            self.watermark = threshold
            self._broadcast_heartbeat(threshold)
            return
        if event_time < self.watermark:
            return
        self.watermark = event_time
        self.raw_watermark = max(self.raw_watermark, event_time)
        self._broadcast_heartbeat(event_time)

    def _broadcast_heartbeat(self, event_time: float,
                             log: bool = True) -> None:
        if log and self.replication_log is not None:
            self.replication_log(self.name, "advance", None, event_time)
        errors = None
        for consumer in tuple(self._consumers):
            try:
                consumer.on_heartbeat(event_time)
            except Exception as exc:
                if errors is None:
                    errors = []
                errors.append((consumer, exc))
        if errors is not None:
            self._report_delivery_errors(None, event_time, errors)

    def flush(self) -> None:
        """End-of-stream: force pending windows out (tests, benches)."""
        self._release(float("inf"))
        for consumer in tuple(self._consumers):
            consumer.on_flush()

    # -- replay tail ------------------------------------------------------------

    def _retain(self, event_time: float, row: tuple) -> None:
        if self.retention is None:
            return
        self._tail.append((event_time, row))
        horizon = self.watermark - self.retention
        while self._tail and self._tail[0][0] < horizon:
            self._tail.popleft()

    def replay_since(self, event_time: float):
        """Yield retained (time, row) pairs with time >= ``event_time``."""
        if self.retention is None:
            raise StreamingError(
                f"stream {self.name!r} has no retention configured"
            )
        for when, row in self._tail:
            if when >= event_time:
                yield when, row

    def replay_horizon(self) -> float:
        """Earliest replayable event time (inf when nothing retained)."""
        if self._tail:
            return self._tail[0][0]
        return float("inf")

    def restore_point(self, event_time: float, row: Optional[tuple] = None):
        """Rebuild one point of the replay tail without fan-out.

        Used by crash recovery and the standby applier: the tuple (or
        heartbeat, when ``row`` is None) moves the watermark and extends
        the retained tail, but consumers are *not* delivered to — the
        windows they would rebuild are recovered separately, from the
        active table.
        """
        if row is not None:
            self.tuples_in += 1
            if self.retention is not None:
                self._tail.append((event_time, tuple(row)))
        if self.tracker is not None:
            # event-time replay: rows re-feed the bounded generator,
            # bare advances re-apply explicit injections — the
            # watermark lands exactly where it was and never regresses
            # across boot, standby apply, or promotion
            if row is not None:
                advanced = self.tracker.observe(event_time)
            else:
                advanced = self.tracker.inject(event_time)
            if advanced is not None:
                self.watermark = advanced
            self.raw_watermark = max(self.raw_watermark, event_time)
            if self.retention is not None:
                horizon = self.watermark - self.retention
                while self._tail and self._tail[0][0] < horizon:
                    self._tail.popleft()
            return
        self.watermark = max(self.watermark, event_time)
        self.raw_watermark = max(self.raw_watermark, self.watermark)
        if self.retention is not None:
            horizon = self.watermark - self.retention
            while self._tail and self._tail[0][0] < horizon:
                self._tail.popleft()

    def __repr__(self):
        return f"BaseStream({self.name}, watermark={self.watermark})"


class DerivedStream:
    """The output of an always-on CQ, re-published window by window.

    Consumers that implement ``on_batch(rows, open_time, close_time)``
    receive whole window results (what a channel wants); others get the
    rows flattened through ``on_tuple`` with the window-close timestamp
    as event time.
    """

    def __init__(self, name: str, schema: Schema, query_text: str = "",
                 retention: Optional[float] = None):
        self.name = name
        self.schema = schema
        self.query_text = query_text
        self.cq = None  # set by the runtime when the CQ is instantiated
        self.batches_out = 0
        self.tuples_out = 0
        self.retention = retention
        self._window_tail = deque()  # (open_time, close_time, rows)
        self._consumers = []

    def subscribe(self, consumer) -> None:
        self._consumers.append(consumer)

    def unsubscribe(self, consumer) -> None:
        if consumer in self._consumers:
            self._consumers.remove(consumer)

    @property
    def consumers(self):
        return list(self._consumers)

    def publish(self, rows, open_time: float, close_time: float) -> None:
        """Called by the owning CQ at each window close."""
        self.batches_out += 1
        self.tuples_out += len(rows)
        if self.retention is not None:
            self._window_tail.append((open_time, close_time, list(rows)))
            horizon = close_time - self.retention
            while self._window_tail and self._window_tail[0][1] <= horizon:
                self._window_tail.popleft()
        for consumer in self._consumers:
            on_batch = getattr(consumer, "on_batch", None)
            if on_batch is not None:
                on_batch(rows, open_time, close_time)
            else:
                for row in rows:
                    consumer.on_tuple(row, close_time)
                # let time-based consumers advance past empty windows
                consumer.on_heartbeat(close_time)

    def publish_correction(self, kind: str, rows, open_time: float,
                           close_time: float) -> None:
        """A typed retraction/correction/early record from the owning
        CQ's lateness machinery.  ``correct`` rewrites the retained
        window in place, so failover replay (``replay_windows``) hands
        a reconnecting subscriber the *corrected* content; consumers
        that understand corrections (``on_correction``) get the typed
        record, others are left alone (they will converge through
        replay or the REPLACE table)."""
        if kind == "correct" and self.retention is not None:
            for i, (w_open, w_close, _rows) in enumerate(self._window_tail):
                if w_close == close_time and w_open == open_time:
                    self._window_tail[i] = (w_open, w_close, list(rows))
                    break
        for consumer in self._consumers:
            on_correction = getattr(consumer, "on_correction", None)
            if on_correction is not None:
                on_correction(kind, rows, open_time, close_time)

    def flush(self) -> None:
        for consumer in self._consumers:
            consumer.on_flush()

    def replay_windows(self, since: float):
        """Retained windows that closed strictly after ``since``.

        The strict bound is what makes failover re-subscription
        duplicate-free: a client that saw a window closing at T asks for
        ``since=T`` and receives only later windows.
        """
        if self.retention is None:
            raise StreamingError(
                f"derived stream {self.name!r} has no retention configured"
            )
        return [(open_time, close_time, list(rows))
                for open_time, close_time, rows in self._window_tail
                if close_time > since]

    def __repr__(self):
        return f"DerivedStream({self.name})"
