"""Views — regular and streaming (the paper's Section 3.2).

Both kinds are stored ASTs.  A regular view is expanded by the planner
like any RDBMS view.  A *streaming* view — one whose query references a
stream — is instantiated lazily: the CQ compiler inlines its query into
the referencing continuous query, so nothing runs until someone uses it
(in contrast to a derived stream, which is always on).
"""

from __future__ import annotations

from repro.sql import ast


class StreamingView:
    """A named, stored SELECT; ``references_streams`` decides its nature."""

    def __init__(self, name: str, query: ast.Select,
                 references_streams: bool, text: str = ""):
        self.name = name
        self.query = query
        self.references_streams = references_streams
        self.text = text

    def __repr__(self):
        kind = "streaming view" if self.references_streams else "view"
        return f"StreamingView({self.name}, {kind})"
