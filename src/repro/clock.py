"""Injectable monotonic clocks.

Admission control is time arithmetic: token buckets refill at
``rate * elapsed``, retry hints are "come back in N ms", the idle
reaper compares silence against a timeout.  Testing that with the real
clock means sleeping; instead, every time-sensitive component takes a
:class:`Clock` and the tests hand in a :class:`ManualClock` they can
advance by hand — sleep-free and deterministic.

Production code uses :data:`SYSTEM_CLOCK`, a singleton over
``time.monotonic`` / ``time.sleep``.
"""

from __future__ import annotations

import time


class Clock:
    """The real monotonic clock (wall-clock jumps never touch it)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self):
        return "Clock(system)"


class ManualClock(Clock):
    """A clock that only moves when told to.

    ``sleep`` advances the clock instead of blocking, so code written
    against :class:`Clock` (retry backoff, bucket refill waits) runs
    instantly under test while seeing exactly the elapsed time it asked
    for.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.advance(seconds)

    def __repr__(self):
        return f"ManualClock({self._now})"


#: the shared production clock
SYSTEM_CLOCK = Clock()
