"""WAL lifecycle: checkpoint-anchored compaction, backup/restore, scrub.

The missing half of the durability story ("Fast Data Management with
Distributed Streaming SQL" makes checkpoint-anchored log truncation
plus durable snapshots the backbone of streaming fault tolerance):

- **compaction** archives sealed segments wholly below the *low-water
  mark* — the minimum of the durable boundary, every live CQ's latest
  checkpoint LSN, and whatever retention hooks (attached standbys)
  demand — so live WAL bytes stay bounded on a long-running server
  while the archive keeps full replay history;
- **online backup** seals the active segment and copies every sealed +
  archived segment into a destination directory, committed by a final
  ``BACKUP.json`` (a backup without it is incomplete and refused);
- **restore** (:func:`restore_backup`) merges a backup with whatever
  segments survive in the target data dir, optionally truncated at
  ``until_lsn`` (point-in-time), and rewrites a clean segmented WAL
  that ordinary boot recovery replays — CQ windows rebuild exactly as
  promotion does;
- the **scrubber** re-validates every sealed segment's record CRCs and
  walks heap pages; a corrupt *archived* segment is quarantined to the
  dead-letter directory (loudly, via the supervisor), a corrupt live
  segment is reported but left in place (it is part of the replay
  prefix — only a backup can heal it).

Everything here runs on the engine thread; the server schedules
compact/scrub/periodic-backup through its maintenance task the same way
the idle reaper runs.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from typing import List, Optional

from repro.errors import WALError
from repro.storage.segments import (
    SEGMENT_RE,
    _read_segment,
    segment_name,
    verify_segment,
)
from repro.storage.wal import record_from_wire, record_to_wire

#: the file that commits a backup; absent = incomplete, refuse restore
BACKUP_MANIFEST = "BACKUP.json"


class WalLifecycle:
    """Compaction, backup and scrubbing for one database's WAL.

    Created for every database; all operations are no-ops (or typed
    errors, for backup) unless the WAL is segmented.
    """

    def __init__(self, db):
        self.db = db
        #: callables -> Optional[int]: lowest LSN a consumer still needs
        #: live (the replication manager registers attached standbys)
        self.retain_hooks: List = []
        self.compact_runs = 0
        self.segments_archived = 0
        self.last_compact_lsn = 0
        self.backups = 0
        self.last_backup_lsn: Optional[int] = None
        self.last_backup_at: Optional[float] = None
        self.scrubs = 0
        self.last_scrub_at: Optional[float] = None
        self.scrub_errors = 0
        self.segments_quarantined = 0
        self.last_error: Optional[str] = None

    @property
    def wal(self):
        return self.db.storage.wal

    @property
    def enabled(self) -> bool:
        return self.wal.segments is not None

    # -- low-water mark ----------------------------------------------------

    def low_water_lsn(self) -> int:
        """First LSN that must stay in the live WAL.

        Everything strictly below it may be archived: it is durable,
        no live CQ's latest checkpoint sits there, and no retention
        hook (attached standby) still needs it shipped from memory.
        """
        wal = self.wal
        low = wal.durable_lsn + 1
        cqs = self.db.runtime.cqs()
        # a standby has no live CQs until promotion, but promotion may
        # recover from any shipped checkpoint — keep every anchor then
        names = set(cqs) if cqs else None
        anchor = wal.checkpoint_anchor_lsn(names)
        if anchor is not None:
            low = min(low, anchor)
        for hook in self.retain_hooks:
            needed = hook()
            if needed is not None:
                low = min(low, needed)
        return max(1, low)

    # -- compaction --------------------------------------------------------

    def compact(self) -> dict:
        """Archive sealed segments wholly below the low-water mark.

        Engine thread.  Each segment is copied to the archive, renamed
        into place, then deleted from the live directory (the
        ``wal.compact`` crashpoint sits between — a crash there leaves
        the segment in both places and load() reconciles).  The
        matching in-memory records are trimmed afterwards, keeping
        memory and the live directory in lockstep.
        """
        wal = self.wal
        if wal.segments is None:
            return {"enabled": False, "archived": 0}
        low = self.low_water_lsn()
        archived = 0
        for seg in list(wal.segments.sealed_live_segments()):
            if seg.last_lsn is None or seg.last_lsn >= low:
                continue
            wal.segments.archive_segment(seg, self.db.faults)
            archived += 1
        if archived:
            wal.release_archived()
            self.segments_archived += archived
        self.compact_runs += 1
        self.last_compact_lsn = low
        return {"enabled": True, "archived": archived, "low_water": low,
                "live_segments": wal.segments.live_count(),
                "live_bytes": wal.segments.live_bytes()}

    # -- online backup -----------------------------------------------------

    def backup(self, dest: str) -> dict:
        """Copy a consistent snapshot of the log into ``dest``.

        Engine thread, online: flushes, force-seals the active segment
        (so the backup ends on a sealed boundary), then copies every
        sealed live + archived segment.  ``BACKUP.json`` is written
        last — it is the commit point; a crash mid-copy (the
        ``backup.snapshot`` crashpoint) leaves an incomplete directory
        that :func:`restore_backup` refuses.
        """
        wal = self.wal
        if wal.segments is None:
            raise WALError("online backup requires a segmented WAL "
                           "(run the server with --data-dir)")
        wal.flush()
        wal.roll_segment(force=True)
        head = wal.durable_lsn
        wal_dir = os.path.join(dest, "wal")
        os.makedirs(wal_dir, exist_ok=True)
        if self.db.faults is not None and self.db.faults.armed:
            self.db.faults.check("backup.snapshot", dest)
        copied = []
        for seg in wal.segments.segments:
            if seg is wal.segments.active or seg.first_lsn is None:
                continue
            src = wal.segments.path_of(seg)
            dst = os.path.join(wal_dir, segment_name(seg.index))
            shutil.copyfile(src, dst)
            copied.append(seg.manifest_entry())
        manifest = {"head_lsn": head, "taken_at": time.time(),
                    "segment_bytes": wal.segments.segment_bytes,
                    "segments": copied}
        tmp = os.path.join(dest, BACKUP_MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1)
        os.replace(tmp, os.path.join(dest, BACKUP_MANIFEST))
        self.backups += 1
        self.last_backup_lsn = head
        self.last_backup_at = manifest["taken_at"]
        return {"path": dest, "head_lsn": head, "segments": len(copied)}

    # -- scrubbing ---------------------------------------------------------

    def scrub(self) -> dict:
        """Re-validate sealed segments' CRCs and walk heap pages.

        A corrupt archived segment is moved to the quarantine directory
        and reported as a dead letter: its range becomes unrecoverable
        locally (restore from backup), but the live log — the replay
        prefix — is untouched.  A corrupt sealed *live* segment cannot
        be dropped (replay needs the prefix); it is counted and loudly
        reported instead.
        """
        wal = self.wal
        stats = {"segments_ok": 0, "segments_corrupt": 0,
                 "quarantined": 0, "records": 0,
                 "heap_pages": 0, "heap_rows": 0, "heap_errors": 0}
        if self.db.faults is not None and self.db.faults.armed:
            self.db.faults.check("scrub.verify")
        if wal.segments is not None:
            sealed = (wal.segments.archived_segments()
                      + wal.segments.sealed_live_segments())
            for seg in sealed:
                count, error = verify_segment(wal.segments.path_of(seg))
                stats["records"] += count
                if error is None:
                    stats["segments_ok"] += 1
                    continue
                stats["segments_corrupt"] += 1
                self.scrub_errors += 1
                name = segment_name(seg.index)
                if seg.archived:
                    path = wal.segments.quarantine_segment(seg)
                    self.segments_quarantined += 1
                    stats["quarantined"] += 1
                    detail = (f"archived segment {name} corrupt, "
                              f"quarantined to {path}: {error}")
                else:
                    detail = (f"sealed live segment {name} corrupt "
                              f"(replay prefix — restore from backup): "
                              f"{error}")
                self.last_error = detail
                if self.db.supervisor is not None:
                    self.db.supervisor.quarantine(
                        f"wal:{name}", "scrub", detail, [])
        self._scrub_heap(stats)
        self.scrubs += 1
        self.last_scrub_at = time.time()
        return stats

    def _scrub_heap(self, stats: dict) -> None:
        """Cheap heap integrity pass: every live row version must still
        match its table's schema width and be measurable (the heap has
        no per-page checksums; structural integrity is the contract)."""
        from repro.catalog import catalog as cat
        from repro.storage.page import row_bytes
        pool = self.db.storage.pool
        for name, table in self.db.catalog.relations(cat.TABLE):
            ncols = len(tuple(table.schema))
            heap = table.heap
            for page_no in range(heap.page_count):
                page = pool.fetch(heap, page_no)
                stats["heap_pages"] += 1
                for _slot, version in page.live_versions():
                    values = version.values
                    try:
                        if len(values) != ncols:
                            raise ValueError(
                                f"{len(values)} values, {ncols} columns")
                        row_bytes(values)
                        stats["heap_rows"] += 1
                    except Exception as exc:
                        stats["heap_errors"] += 1
                        self.scrub_errors += 1
                        self.last_error = (
                            f"heap {name} page {page_no}: {exc}")

    # -- introspection -----------------------------------------------------

    def status_row(self) -> tuple:
        """The single row of the ``repro_storage`` system view."""
        wal = self.wal
        if wal.segments is None:
            mode = "file" if wal.path is not None else "memory"
            return (mode, None, None, None, None, 0,
                    wal.head_lsn, None, None, 0,
                    self.scrubs, self.last_scrub_at, self.scrub_errors, 0)
        segs = wal.segments
        return ("segmented", segs.live_count(), segs.live_bytes(),
                len(segs.archived_segments()), segs.archive_bytes(),
                self.segments_archived, wal.head_lsn,
                self.low_water_lsn(), self.last_backup_lsn, self.backups,
                self.scrubs, self.last_scrub_at, self.scrub_errors,
                self.segments_quarantined)


# ---------------------------------------------------------------------------
# restore / point-in-time recovery
# ---------------------------------------------------------------------------


def restore_backup(backup_dir: str, data_dir: str,
                   until_lsn: Optional[int] = None,
                   wal_dirname: str = "wal",
                   archive_dirname: str = "wal_archive") -> dict:
    """Rebuild ``data_dir``'s WAL from a backup, optionally to a point
    in time.

    Merges three sources — the backup's segments, and whatever live +
    archived segments survive in the target data dir (so records
    written *after* the backup are kept when restoring in place after a
    crash) — deduplicates by LSN, truncates at ``until_lsn`` when
    given, verifies contiguity, and writes a fresh live segment
    directory.  The next :func:`~repro.replication.bootstrap.open_database`
    replays it through ordinary boot recovery, rebuilding tables,
    stream tails and CQ windows exactly as promotion does.
    """
    manifest_path = os.path.join(backup_dir, BACKUP_MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError):
        raise WALError(
            f"{backup_dir!r} is not a complete backup (missing or "
            f"unreadable {BACKUP_MANIFEST}; the backup may have been "
            "interrupted)")

    live_dir = os.path.join(data_dir, wal_dirname)
    archive_dir = os.path.join(data_dir, archive_dirname)
    sources = [os.path.join(backup_dir, "wal"), live_dir, archive_dir]
    by_lsn = {}
    for directory in sources:
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if not SEGMENT_RE.match(name):
                continue
            wires, _size, _torn = _read_segment(
                os.path.join(directory, name))
            for fields in wires:
                record = record_from_wire(fields)
                if not record.is_valid():
                    continue  # another copy of this LSN may be intact
                if until_lsn is not None and record.lsn > until_lsn:
                    continue
                by_lsn.setdefault(record.lsn, record)
    if not by_lsn:
        raise WALError(f"restore found no valid records in {backup_dir!r}")
    lsns = sorted(by_lsn)
    for prev, nxt in zip(lsns, lsns[1:]):
        if nxt != prev + 1:
            raise WALError(
                f"restore cannot bridge missing lsns {prev + 1}.."
                f"{nxt - 1}: not in the backup, the live WAL or the "
                "archive")

    segment_bytes = int(manifest.get("segment_bytes") or 0) or None
    from repro.storage.segments import DEFAULT_SEGMENT_BYTES
    if segment_bytes is None:
        segment_bytes = DEFAULT_SEGMENT_BYTES

    # wipe the old layout, write sealed segments + an empty active one
    for directory in (live_dir, archive_dir):
        if os.path.isdir(directory):
            shutil.rmtree(directory)
    os.makedirs(live_dir, exist_ok=True)
    index = 1
    written = 0
    fh = open(os.path.join(live_dir, segment_name(index)), "w",
              encoding="utf-8")
    size = 0
    try:
        for lsn in lsns:
            line = json.dumps(record_to_wire(by_lsn[lsn]),
                              default=str) + "\n"
            if size and size + len(line) > segment_bytes:
                fh.close()
                index += 1
                fh = open(os.path.join(live_dir, segment_name(index)),
                          "w", encoding="utf-8")
                size = 0
            fh.write(line)
            size += len(line)
            written += 1
    finally:
        fh.close()
    legacy = os.path.join(data_dir, "wal.jsonl")
    if os.path.exists(legacy):
        os.remove(legacy)
    return {"records": written, "head_lsn": lsns[-1],
            "first_lsn": lsns[0], "segments": index,
            "until_lsn": until_lsn,
            "backup_head_lsn": manifest.get("head_lsn")}
