"""Slotted pages and row versions.

A :class:`Page` holds :class:`RowVersion` objects in slots.  Sizes are
*estimated* (we do not actually serialise values) so the page count — and
therefore the simulated I/O cost — tracks what a C engine would incur.
"""

from __future__ import annotations

from typing import Optional

PAGE_SIZE = 8192
_PAGE_HEADER = 24
_SLOT_OVERHEAD = 4
_ROW_HEADER = 24  # xmin, xmax, flags — a PostgreSQL-like tuple header


def value_bytes(value) -> int:
    """Estimated on-disk size of one SQL value."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 4 + len(value)
    return 8


def row_bytes(values) -> int:
    """Estimated on-disk size of one row (header + values)."""
    return _ROW_HEADER + sum(value_bytes(v) for v in values)


class RowVersion:
    """One MVCC version of a row.

    ``xmin`` is the creating transaction, ``xmax`` the deleting one (or
    None while the version is live).  ``values`` is the row tuple.
    """

    __slots__ = ("xmin", "xmax", "values")

    def __init__(self, xmin: int, values: tuple, xmax: Optional[int] = None):
        self.xmin = xmin
        self.xmax = xmax
        self.values = values

    def __repr__(self):
        return f"RowVersion(xmin={self.xmin}, xmax={self.xmax}, {self.values!r})"


class Page:
    """A slotted page of row versions.

    Deleted slots keep a ``None`` tombstone so row ids (page, slot) stay
    stable; vacuum compaction is out of scope.
    """

    __slots__ = ("page_no", "slots", "bytes_used")

    def __init__(self, page_no: int):
        self.page_no = page_no
        self.slots = []
        self.bytes_used = _PAGE_HEADER

    def has_room(self, nbytes: int) -> bool:
        return self.bytes_used + nbytes + _SLOT_OVERHEAD <= PAGE_SIZE

    def insert(self, version: RowVersion) -> int:
        """Append a version; returns its slot number."""
        self.slots.append(version)
        self.bytes_used += row_bytes(version.values) + _SLOT_OVERHEAD
        return len(self.slots) - 1

    def get(self, slot: int) -> Optional[RowVersion]:
        return self.slots[slot]

    def remove(self, slot: int) -> None:
        """Physically drop a slot's payload (leaves a tombstone)."""
        version = self.slots[slot]
        if version is not None:
            self.bytes_used -= row_bytes(version.values)
            self.slots[slot] = None

    def live_versions(self):
        """Yield (slot, version) for non-tombstoned slots."""
        for slot, version in enumerate(self.slots):
            if version is not None:
                yield slot, version
