"""StorageManager: owns the disk, buffer pool, WAL and file-id space."""

from __future__ import annotations

from repro.catalog.schema import Schema
from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.table import Table
from repro.storage.wal import WriteAheadLog


class StorageManager:
    """One per database: the physical layer behind every table and index."""

    def __init__(self, buffer_pages: int = 256, disk: SimulatedDisk = None,
                 faults=None, wal_path=None, wal_segment_bytes=None,
                 wal_archive_dir=None):
        self.disk = disk if disk is not None else SimulatedDisk()
        if faults is not None and self.disk.faults is None:
            self.disk.faults = faults
        self.pool = BufferPool(self.disk, buffer_pages, faults=faults)
        # wal_segment_bytes switches the log to segmented mode: wal_path
        # is then a directory of rolling segments rather than one file
        self.wal = WriteAheadLog(self.disk, self.disk.page_size,
                                 faults=faults, path=wal_path,
                                 segment_bytes=wal_segment_bytes,
                                 archive_dir=wal_archive_dir)
        self._next_file_id = 1  # 0 is the WAL

    def allocate_file(self) -> HeapFile:
        heap = HeapFile(self._next_file_id)
        self._next_file_id += 1
        return heap

    def create_table(self, name: str, schema: Schema) -> Table:
        return Table(name, schema, self.allocate_file(), self.pool, self.wal)

    def create_index(self, name: str, table: Table, column_names,
                     unique: bool = False, charge_io: bool = True) -> BPlusTree:
        """Build a B+tree over ``table`` and keep it maintained.

        ``charge_io=False`` builds a purely in-memory index (used by the
        A2 ablation to separate index benefit from index I/O cost).
        """
        pool = self.pool if charge_io else None
        file_id = self._next_file_id
        self._next_file_id += 1
        index = BPlusTree(name, table.name, column_names, pool, file_id, unique)
        table.attach_index(index)
        return index

    def drop_table_storage(self, table: Table) -> None:
        self.pool.drop_file(table.heap.file_id)
