"""Storage engine: pages, heaps, buffer pool, B+tree, WAL, simulated disk.

All page traffic is routed through the :class:`~repro.storage.buffer.BufferPool`
against a :class:`~repro.storage.disk.SimulatedDisk`, which is the cost model
used by the benchmarks: store-first-query-later plans pay for the pages they
write and re-read, continuous plans mostly do not (Section 2.2's "Jellybean
Processing" argument).
"""

from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.page import PAGE_SIZE, Page, RowVersion, row_bytes
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.btree import BPlusTree
from repro.storage.wal import LogRecord, WriteAheadLog

__all__ = [
    "SimulatedDisk",
    "DiskStats",
    "PAGE_SIZE",
    "Page",
    "RowVersion",
    "row_bytes",
    "BufferPool",
    "HeapFile",
    "BPlusTree",
    "WriteAheadLog",
    "LogRecord",
]
