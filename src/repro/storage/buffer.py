"""Buffer pool: an LRU page cache in front of the simulated disk.

Every page access in the engine goes through :meth:`BufferPool.fetch`, so
cache hits are free and misses charge the disk.  This is what makes the
cost model honest: a batch plan that re-reads a large table pays real
(simulated) I/O, while a continuous plan that touches a few hot pages
does not.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.disk import SimulatedDisk


class BufferPool:
    """An LRU cache of (file_id, page_no) frames with dirty tracking."""

    def __init__(self, disk: SimulatedDisk, capacity_pages: int = 256,
                 faults=None):
        self.disk = disk
        self.capacity = capacity_pages
        self.faults = faults
        self._frames: "OrderedDict[tuple, object]" = OrderedDict()
        self._dirty = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.eviction_failures = 0

    def fetch(self, heap_file, page_no: int):
        """Return the page, charging a disk read on a cache miss."""
        key = (heap_file.file_id, page_no)
        page = self._frames.get(key)
        if page is not None:
            self.hits += 1
            self._frames.move_to_end(key)
            return page
        self.misses += 1
        self.disk.read_page(heap_file.file_id, page_no)
        page = heap_file.page(page_no)
        self._admit(key, page)
        return page

    def fetch_new(self, heap_file, page):
        """Register a freshly-allocated page (no read charged)."""
        key = (heap_file.file_id, page.page_no)
        self._admit(key, page)
        self._dirty.add(key)

    def _admit(self, key, page):
        self._frames[key] = page
        self._frames.move_to_end(key)
        while len(self._frames) > self.capacity:
            old_key, old_page = self._frames.popitem(last=False)
            if old_key in self._dirty:
                try:
                    if self.faults is not None:
                        self.faults.check("buffer.evict", f"page {old_key}")
                    self.disk.write_page(*old_key)
                except Exception:
                    # write-back failed: keep the dirty frame resident (no
                    # data loss; the pool runs over capacity until a later
                    # eviction succeeds) and surface the error
                    self.eviction_failures += 1
                    self._frames[old_key] = old_page
                    self._frames.move_to_end(old_key, last=False)
                    raise
                self._dirty.discard(old_key)
            self.evictions += 1

    def mark_dirty(self, heap_file, page_no: int) -> None:
        """Record that the page must be written before eviction."""
        key = (heap_file.file_id, page_no)
        if key in self._frames:
            self._dirty.add(key)
        else:
            # modified without being resident (shouldn't happen via the
            # normal path, but charge the write-back conservatively)
            self.disk.write_page(*key)

    def flush(self) -> int:
        """Write back every dirty page; returns how many were written."""
        written = 0
        for key in sorted(self._dirty):
            self.disk.write_page(*key)
            written += 1
        self._dirty.clear()
        return written

    def drop_file(self, file_id: int) -> None:
        """Discard all frames of a dropped file without write-back."""
        stale = [key for key in self._frames if key[0] == file_id]
        for key in stale:
            del self._frames[key]
            self._dirty.discard(key)

    def clear(self) -> None:
        """Empty the cache (simulates a cold restart) without write-back."""
        self._frames.clear()
        self._dirty.clear()
