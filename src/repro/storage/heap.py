"""Heap files: unordered row storage addressed by (page_no, slot) rids."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.storage.buffer import BufferPool
from repro.storage.page import Page, RowVersion, row_bytes

Rid = Tuple[int, int]


class HeapFile:
    """An append-friendly file of slotted pages.

    All access goes through a :class:`BufferPool` so the simulated disk
    sees every page touch.  The file keeps the authoritative page list
    (the "disk image"); the pool only decides what a touch costs.
    """

    def __init__(self, file_id: int):
        self.file_id = file_id
        self._pages = []
        self.row_count = 0  # live slots, maintained on insert/remove

    # -- low-level access (used by the buffer pool) -------------------------

    def page(self, page_no: int) -> Page:
        return self._pages[page_no]

    @property
    def page_count(self) -> int:
        return len(self._pages)

    # -- public operations ---------------------------------------------------

    def insert(self, pool: BufferPool, version: RowVersion) -> Rid:
        """Insert a row version, returning its rid."""
        nbytes = row_bytes(version.values)
        if self._pages:
            last_no = len(self._pages) - 1
            page = pool.fetch(self, last_no)
            if page.has_room(nbytes):
                slot = page.insert(version)
                pool.mark_dirty(self, last_no)
                self.row_count += 1
                return (last_no, slot)
        page = Page(len(self._pages))
        self._pages.append(page)
        pool.fetch_new(self, page)
        slot = page.insert(version)
        self.row_count += 1
        return (page.page_no, slot)

    def read(self, pool: BufferPool, rid: Rid) -> Optional[RowVersion]:
        """Fetch one row version by rid (None if tombstoned)."""
        page_no, slot = rid
        page = pool.fetch(self, page_no)
        return page.get(slot)

    def mark_updated(self, pool: BufferPool, rid: Rid) -> None:
        """Charge the write-back for an in-place header update (xmax)."""
        pool.mark_dirty(self, rid[0])

    def remove(self, pool: BufferPool, rid: Rid) -> None:
        """Physically remove a version (vacuum / rollback cleanup)."""
        page_no, slot = rid
        page = pool.fetch(self, page_no)
        if page.get(slot) is not None:
            page.remove(slot)
            self.row_count -= 1
            pool.mark_dirty(self, page_no)

    def scan(self, pool: BufferPool) -> Iterator[Tuple[Rid, RowVersion]]:
        """Full scan in page order, yielding (rid, version)."""
        for page_no in range(len(self._pages)):
            page = pool.fetch(self, page_no)
            for slot, version in page.live_versions():
                yield (page_no, slot), version

    def truncate(self, pool: BufferPool) -> None:
        """Drop all pages (REPLACE-mode channels, DROP TABLE)."""
        pool.drop_file(self.file_id)
        self._pages = []
        self.row_count = 0
