"""Write-ahead log.

The WAL serves two masters, as in the paper (Section 4):

- durability of *tables*: every insert/update/delete is logged before the
  owning transaction commits, and :func:`WriteAheadLog.replay` rebuilds
  table contents after a crash;
- recovery of *CQ runtime state*: the checkpoint-based strategy writes
  serialized operator state as ``cq_checkpoint`` records, which
  :mod:`repro.streaming.recovery` contrasts with the paper's preferred
  rebuild-from-active-tables strategy.

Every record carries a CRC32 of its content, computed at append time the
way a real engine checksums each log record on its way to disk.  A torn
or partial write (crashpoint ``wal.torn_write``, or a crash mid-flush)
leaves a record whose stored checksum no longer matches its content;
recovery *truncates* the log at the first such record — everything before
it is trusted, everything after it is discarded — instead of failing
mid-replay.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

# record kinds
INSERT = "insert"
DELETE = "delete"
UPDATE = "update"
COMMIT = "commit"
ABORT = "abort"
CHECKPOINT = "cq_checkpoint"

#: approximate bytes per log record header, for flush cost accounting
_RECORD_OVERHEAD = 40


@dataclass
class LogRecord:
    """One WAL entry."""

    lsn: int
    txid: int
    kind: str
    table: Optional[str] = None
    rid: Optional[tuple] = None
    before: Optional[tuple] = None
    after: Optional[tuple] = None
    payload: Optional[object] = None  # checkpoint state
    crc: int = 0                      # CRC32 of the content at append time
    torn: bool = False                # True: the tail of this record was lost

    def content_crc(self) -> int:
        """CRC32 over the record's logical content (not the stored crc)."""
        body = repr((self.txid, self.kind, self.table, self.rid,
                     self.before, self.after, self.payload))
        return zlib.crc32(body.encode("utf-8", "backslashreplace"))

    def is_valid(self) -> bool:
        """True when the stored checksum still matches the content."""
        return not self.torn and self.crc == self.content_crc()


class WriteAheadLog:
    """An in-memory append-only log with disk-flush cost accounting.

    Records accumulate in a tail buffer; :meth:`flush` charges the
    simulated disk one sequential page write per page of buffered bytes
    (group commit).  The engine flushes on every commit.
    """

    #: file id used when charging the simulated disk
    WAL_FILE_ID = 0

    def __init__(self, disk=None, page_size: int = 8192, faults=None):
        self.disk = disk
        self.page_size = page_size
        self.faults = faults
        self.records = []
        self._next_lsn = 1
        self._unflushed_bytes = 0
        self._flushed_upto = 0  # index into records
        self._next_wal_page = 0
        self.flush_count = 0
        self.torn_records = 0

    def append(self, txid: int, kind: str, table: str = None, rid=None,
               before=None, after=None, payload=None) -> LogRecord:
        """Add a record to the tail buffer (not yet durable)."""
        record = LogRecord(self._next_lsn, txid, kind, table, rid,
                           before, after, payload)
        record.crc = record.content_crc()
        self._next_lsn += 1
        self.records.append(record)
        self._unflushed_bytes += _RECORD_OVERHEAD + _value_bytes(before) \
            + _value_bytes(after) + _payload_bytes(payload)
        return record

    def flush(self) -> None:
        """Make all buffered records durable; charges sequential writes.

        With the ``wal.torn_write`` crashpoint armed, the flush may tear
        the last buffered record: it reaches "disk" with its tail missing,
        so its checksum no longer validates and recovery truncates there.
        """
        if self._flushed_upto == len(self.records):
            return
        if self.faults is not None \
                and self.faults.should("wal.torn_write"):
            victim = self.records[-1]
            victim.torn = True
            self.torn_records += 1
        pages = max(1, -(-self._unflushed_bytes // self.page_size))
        if self.disk is not None:
            for _ in range(pages):
                self.disk.write_page(self.WAL_FILE_ID, self._next_wal_page)
                self._next_wal_page += 1
        self._unflushed_bytes = 0
        self._flushed_upto = len(self.records)
        self.flush_count += 1

    # -- validation --------------------------------------------------------

    def _validated(self) -> List[LogRecord]:
        """The durable prefix that passes checksum validation.

        Stops at the first torn/corrupt record: a record whose checksum
        fails proves the write tore there, and nothing after it can be
        trusted to have reached disk intact.
        """
        out = []
        for record in self.records[:self._flushed_upto]:
            if not record.is_valid():
                break
            out.append(record)
        return out

    def first_corrupt_lsn(self) -> Optional[int]:
        """LSN of the first torn/corrupt durable record (None when clean)."""
        for record in self.records[:self._flushed_upto]:
            if not record.is_valid():
                return record.lsn
        return None

    def durable_records(self) -> Iterator[LogRecord]:
        """Records that survived the last flush intact (what replay sees)."""
        return iter(self._validated())

    def replay(self) -> dict:
        """Reconstruct committed table contents from the durable log.

        Returns ``{table_name: [row_tuple, ...]}`` for all rows inserted
        by committed transactions and not deleted by committed
        transactions — the durable state a restarted engine would load.
        The log is truncated at the first corrupt/torn record, and a
        transaction whose abort is on record is never replayed even if a
        stray commit record precedes it (a commit whose flush failed).
        """
        durable = self._validated()
        committed = set()
        aborted = set()
        for record in durable:
            if record.kind == COMMIT:
                committed.add(record.txid)
            elif record.kind == ABORT:
                aborted.add(record.txid)
        committed -= aborted
        tables: dict = {}
        live: dict = {}
        for record in durable:
            if record.txid not in committed:
                continue
            if record.kind == INSERT:
                live.setdefault(record.table, {})[record.rid] = record.after
            elif record.kind == DELETE:
                live.setdefault(record.table, {}).pop(record.rid, None)
            elif record.kind == UPDATE:
                live.setdefault(record.table, {})[record.rid] = record.after
        for table, rows in live.items():
            if rows:
                tables[table] = list(rows.values())
        return tables

    def latest_checkpoint(self, name: str):
        """Most recent durable cq_checkpoint payload for ``name`` (or None)."""
        for record in reversed(self._validated()):
            if record.kind == CHECKPOINT and record.table == name:
                return record.payload
        return None

    def __len__(self):
        return len(self.records)


def _value_bytes(values) -> int:
    if values is None:
        return 0
    total = 0
    for value in values:
        if isinstance(value, str):
            total += 4 + len(value)
        else:
            total += 8
    return total


def _payload_bytes(payload) -> int:
    if payload is None:
        return 0
    # checkpoint payloads are nested dict/list structures; a rough size
    return len(repr(payload))
