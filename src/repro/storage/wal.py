"""Write-ahead log.

The WAL serves two masters, as in the paper (Section 4):

- durability of *tables*: every insert/update/delete is logged before the
  owning transaction commits, and :func:`WriteAheadLog.replay` rebuilds
  table contents after a crash;
- recovery of *CQ runtime state*: the checkpoint-based strategy writes
  serialized operator state as ``cq_checkpoint`` records, which
  :mod:`repro.streaming.recovery` contrasts with the paper's preferred
  rebuild-from-active-tables strategy.

Every record carries a CRC32 of its content, computed at append time the
way a real engine checksums each log record on its way to disk.  A torn
or partial write (crashpoint ``wal.torn_write``, or a crash mid-flush)
leaves a record whose stored checksum no longer matches its content;
recovery *truncates* the log at the first such record — everything before
it is trusted, everything after it is discarded — instead of failing
mid-replay.

The log runs in one of three modes:

- **in-memory** (no ``path``): records only live in ``self.records``;
- **single-file** (``path`` points at a file): the original unbounded
  ``wal.jsonl`` — kept for compatibility and for tests that pass a
  ``wal_path`` directly;
- **segmented** (``path`` is a directory + ``segment_bytes``): records
  land in fixed-size rolling segment files managed by
  :class:`~repro.storage.segments.SegmentedLog`.  Sealed segments can be
  *archived* (moved to the archive dir by checkpoint-anchored
  compaction) and the matching in-memory records trimmed; the in-memory
  list then mirrors the live directory, with ``compacted_below`` naming
  the lowest LSN still held.  A ``records_from`` below that boundary
  raises a typed :class:`~repro.errors.ReplicationGapError` whose range
  the primary's attach path answers from the archive.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ReplicationGapError, WALError

# record kinds
INSERT = "insert"
DELETE = "delete"
UPDATE = "update"
COMMIT = "commit"
ABORT = "abort"
CHECKPOINT = "cq_checkpoint"
DDL = "ddl"                      # table registration (schema payload)
DDL_OBJ = "ddl_obj"              # stream/view/channel/index/drop (spec payload)
STREAM_INSERT = "stream_insert"  # one stream tuple (replication / tail rebuild)
STREAM_ADVANCE = "stream_advance"  # a stream heartbeat (watermark move)
STREAM_DEDUP = "stream_dedup"    # idempotent-ingest marker: rid=(sender, seq)

#: approximate bytes per log record header, for flush cost accounting
_RECORD_OVERHEAD = 40


@dataclass
class LogRecord:
    """One WAL entry."""

    lsn: int
    txid: int
    kind: str
    table: Optional[str] = None
    rid: Optional[tuple] = None
    before: Optional[tuple] = None
    after: Optional[tuple] = None
    payload: Optional[object] = None  # checkpoint state
    crc: int = 0                      # CRC32 of the content at append time
    torn: bool = False                # True: the tail of this record was lost

    def content_crc(self) -> int:
        """CRC32 over the record's logical content (not the stored crc).

        Computed over the canonical JSON encoding so the checksum survives
        a round trip through the wire protocol or the log file: JSON does
        not distinguish tuples from lists, and any exotic value degrades
        through ``str`` identically on both ends.
        """
        body = json.dumps(
            [self.txid, self.kind, self.table, self.rid, self.before,
             self.after, self.payload],
            separators=(",", ":"), sort_keys=True, default=str)
        return zlib.crc32(body.encode("utf-8"))

    def is_valid(self) -> bool:
        """True when the stored checksum still matches the content."""
        return not self.torn and self.crc == self.content_crc()


def record_to_wire(record: LogRecord) -> dict:
    """Serialize a record for the replication wire or the log file."""
    return {"lsn": record.lsn, "txid": record.txid, "kind": record.kind,
            "table": record.table, "rid": _jsonable(record.rid),
            "before": _jsonable(record.before),
            "after": _jsonable(record.after),
            "payload": record.payload, "crc": record.crc}


def record_from_wire(fields: dict) -> LogRecord:
    """Rebuild a record from its wire/file form.

    The stored checksum is carried through *unverified*; callers decide
    whether to trust it (`is_valid`) or truncate/quarantine.
    """
    return LogRecord(
        int(fields["lsn"]), int(fields["txid"]), fields["kind"],
        fields.get("table"), _as_tuple(fields.get("rid")),
        _as_tuple(fields.get("before")), _as_tuple(fields.get("after")),
        fields.get("payload"), crc=int(fields.get("crc", 0)))


def _jsonable(values):
    return list(values) if isinstance(values, tuple) else values


def _as_tuple(values):
    return tuple(values) if isinstance(values, list) else values


class WriteAheadLog:
    """An in-memory append-only log with disk-flush cost accounting.

    Records accumulate in a tail buffer; :meth:`flush` charges the
    simulated disk one sequential page write per page of buffered bytes
    (group commit).  The engine flushes on every commit.
    """

    #: file id used when charging the simulated disk
    WAL_FILE_ID = 0

    def __init__(self, disk=None, page_size: int = 8192, faults=None,
                 path: Optional[str] = None,
                 segment_bytes: Optional[int] = None,
                 archive_dir: Optional[str] = None):
        self.disk = disk
        self.page_size = page_size
        self.faults = faults
        self.records = []
        self._next_lsn = 1
        self._unflushed_bytes = 0
        self._flushed_upto = 0  # index into records
        self._next_wal_page = 0
        self.flush_count = 0
        self.torn_records = 0
        #: called with each appended record (primary-side WAL shipping)
        self.on_append = None
        #: obs histogram observing flush wall time (None = untimed)
        self.flush_timer = None
        #: lowest LSN still held in ``records``; anything below was
        #: trimmed after being archived (segmented mode only moves it)
        self.compacted_below = 1
        #: cq name -> LSN of its latest checkpoint record (compaction
        #: anchor: segments holding these are never archived past)
        self._checkpoint_lsns = {}
        self.path = path
        self._fh = None
        self.segments = None
        if path is not None:
            if segment_bytes is not None:
                from repro.storage.segments import SegmentedLog
                self.segments = SegmentedLog(
                    path, archive_dir=archive_dir,
                    segment_bytes=segment_bytes)
                self._open_segments()
            else:
                self._open_file(path)

    def append(self, txid: int, kind: str, table: str = None, rid=None,
               before=None, after=None, payload=None) -> LogRecord:
        """Add a record to the tail buffer (not yet durable)."""
        record = LogRecord(self._next_lsn, txid, kind, table, rid,
                           before, after, payload)
        record.crc = record.content_crc()
        self._next_lsn += 1
        self.records.append(record)
        self._unflushed_bytes += _RECORD_OVERHEAD + _value_bytes(before) \
            + _value_bytes(after) + _payload_bytes(payload)
        self._note_record(record)
        if self.on_append is not None:
            self.on_append(record)
        return record

    def append_replicated(self, record: LogRecord) -> LogRecord:
        """Adopt a record shipped from a primary, preserving its LSN.

        A standby's log stays a byte-for-byte prefix of the primary's,
        so a promoted standby continues the same LSN sequence and a
        restarted standby knows exactly where to resume shipping from.
        """
        self.records.append(record)
        self._next_lsn = record.lsn + 1
        self._unflushed_bytes += _RECORD_OVERHEAD \
            + _value_bytes(record.before) + _value_bytes(record.after) \
            + _payload_bytes(record.payload)
        self._note_record(record)
        if self.on_append is not None:
            self.on_append(record)
        return record

    def _note_record(self, record: LogRecord) -> None:
        """Track compaction anchors as records pass through.

        The latest ``cq_checkpoint`` per CQ pins its segment against
        archiving (promotion-time recovery must find it in the live
        log); a logged DROP of the owning stream releases the pin so a
        deleted CQ cannot hold retention hostage forever.
        """
        if record.kind == CHECKPOINT:
            self._checkpoint_lsns[record.table] = record.lsn
        elif record.kind == DDL_OBJ and isinstance(record.payload, dict) \
                and record.payload.get("op") == "drop":
            name = record.payload.get("name")
            self._checkpoint_lsns.pop(name, None)
            self._checkpoint_lsns.pop(f"derived:{name}", None)

    def records_from(self, from_lsn: int) -> List[LogRecord]:
        """All records with ``lsn >= from_lsn`` (shipping resume point).

        The in-memory list is contiguous by LSN starting at
        ``records[0].lsn``, so this is a slice, not a scan.  Edge cases
        pin the contract: an empty log and a ``from_lsn`` past the head
        both return ``[]`` (nothing to ship *yet*); a ``from_lsn`` below
        :attr:`compacted_below` raises a typed
        :class:`~repro.errors.ReplicationGapError` naming the missing
        range, which the primary answers from the archive.
        """
        from_lsn = max(1, int(from_lsn))
        if from_lsn < self.compacted_below:
            raise ReplicationGapError(
                f"wal records {from_lsn}..{self.compacted_below - 1} "
                "are no longer retained in memory (compacted to the "
                "archive)", missing_from=from_lsn,
                missing_to=self.compacted_below - 1)
        if not self.records:
            return []
        start = from_lsn - self.records[0].lsn
        if start <= 0:
            return list(self.records)
        if start >= len(self.records):
            return []
        return list(self.records[start:])

    def archived_wire_records(self, from_lsn: int,
                              to_lsn: Optional[int] = None) -> List[dict]:
        """Wire records served from archived segments (standby catch-up).

        Raises :class:`~repro.errors.ReplicationGapError` when even the
        archive cannot cover ``from_lsn`` — the range is then truly
        unrecoverable without a backup.
        """
        floor = (self.segments.archive_floor_lsn()
                 if self.segments is not None else None)
        if floor is None or floor > from_lsn:
            missing_to = floor - 1 if floor is not None else \
                (to_lsn if to_lsn is not None else self.compacted_below - 1)
            raise ReplicationGapError(
                f"wal records {from_lsn}..{missing_to} are unrecoverable"
                ": not in memory and not in the archive",
                missing_from=from_lsn, missing_to=missing_to)
        return self.segments.archived_records(from_lsn, to_lsn)

    @property
    def head_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self._next_lsn - 1

    def flush(self) -> None:
        """Make all buffered records durable; charges sequential writes.

        With the ``wal.torn_write`` crashpoint armed, the flush may tear
        the last buffered record: it reaches "disk" with its tail missing,
        so its checksum no longer validates and recovery truncates there.

        When the log is file-backed, buffered records are written out as
        JSON lines; a torn record is written as a truncated line, so a
        later load truncates the log there exactly as `_validated` does.
        """
        if self._flushed_upto == len(self.records):
            return
        timer = self.flush_timer
        started = time.perf_counter() if timer is not None else 0.0
        if self.faults is not None \
                and self.faults.should("wal.torn_write"):
            victim = self.records[-1]
            victim.torn = True
            self.torn_records += 1
        pages = max(1, -(-self._unflushed_bytes // self.page_size))
        if self.disk is not None:
            for _ in range(pages):
                self.disk.write_page(self.WAL_FILE_ID, self._next_wal_page)
                self._next_wal_page += 1
        if self._fh is not None or self.segments is not None:
            for record in self.records[self._flushed_upto:]:
                line = json.dumps(record_to_wire(record), default=str)
                data = (line[:max(1, len(line) // 2)] if record.torn
                        else line + "\n")
                if self.segments is not None:
                    self.segments.write(record.lsn, data)
                else:
                    self._fh.write(data)
            if self.segments is not None:
                self.segments.flush()
            else:
                self._fh.flush()
        self._unflushed_bytes = 0
        self._flushed_upto = len(self.records)
        self.flush_count += 1
        if self.segments is not None and self.segments.should_roll():
            # everything above is already durable: a crash here (the
            # wal.segment_roll crashpoint) loses nothing, and the next
            # flush simply retries the roll
            self.roll_segment()
        if timer is not None:
            timer.observe(time.perf_counter() - started)

    def roll_segment(self, force: bool = False):
        """Seal the active segment and open the next (segmented mode).

        ``force`` seals a non-empty active segment regardless of size —
        the online backup uses it so a backup always ends on a sealed
        segment boundary.  Returns the sealed segment, or None when
        there was nothing to seal.
        """
        if self.segments is None:
            return None
        if self.segments.active.first_lsn is None:
            return None
        if not force and not self.segments.should_roll():
            return None
        if self.faults is not None and self.faults.armed:
            self.faults.check("wal.segment_roll",
                              f"segment {self.segments.active.index}")
        return self.segments.roll()

    def trim_below(self, lsn: int) -> int:
        """Forget in-memory records with ``lsn`` below the given bound.

        Called after the matching segments were archived: the records
        stay readable through :meth:`archived_wire_records`, memory and
        the live directory shrink together.  Unflushed records are never
        trimmed.  Returns how many records were dropped.
        """
        lsn = min(lsn, self.head_lsn + 1)
        if not self.records:
            self.compacted_below = max(self.compacted_below, lsn)
            return 0
        drop = min(lsn - self.records[0].lsn, self._flushed_upto,
                   len(self.records))
        if drop <= 0:
            return 0
        del self.records[:drop]
        self._flushed_upto -= drop
        self.compacted_below = (self.records[0].lsn if self.records
                                else lsn)
        return drop

    def release_archived(self) -> int:
        """Drop records held only by archived segments from memory.

        Boot recovery loads the *whole* log (archive included) to
        rebuild state; once that is done, memory needs to mirror only
        the live directory.  Returns how many records were released.
        """
        if self.segments is None:
            return 0
        floor = None
        for seg in self.segments.segments:
            if not seg.archived and seg.first_lsn is not None:
                floor = seg.first_lsn
                break
        if floor is None:
            floor = self.head_lsn + 1
        return self.trim_below(floor)

    # -- file persistence --------------------------------------------------

    def _open_file(self, path: str) -> None:
        """Load the durable log from ``path`` and reopen it for append.

        The validated prefix is rewritten so a torn tail from the
        previous incarnation is physically dropped, matching the
        truncate-at-first-corrupt recovery contract.
        """
        loaded: List[LogRecord] = []
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = record_from_wire(json.loads(line))
                    except (ValueError, KeyError, TypeError):
                        break  # torn tail: trust nothing past this point
                    if not record.is_valid():
                        break
                    loaded.append(record)
        self.records = loaded
        if loaded:
            self._next_lsn = loaded[-1].lsn + 1
        self._flushed_upto = len(loaded)
        with open(path, "w", encoding="utf-8") as fh:
            for record in loaded:
                fh.write(json.dumps(record_to_wire(record),
                                    default=str) + "\n")
        self._fh = open(path, "a", encoding="utf-8")

    def _open_segments(self) -> None:
        """Load the segmented log: archive + live segments, in order.

        All records (archived included) are loaded into memory so boot
        recovery sees the full history; the caller trims them back with
        :meth:`release_archived` once recovery completes.  The active
        segment keeps the truncate-at-first-corrupt contract: its
        validated prefix is rewritten, a torn tail physically dropped.
        A corrupt record in a *sealed* segment is not truncatable — it
        would silently discard durable history — and raises instead.
        """
        wires = self.segments.load()
        loaded: List[LogRecord] = []
        invalid_at: Optional[int] = None
        for fields in wires:
            record = record_from_wire(fields)
            if not record.is_valid():
                invalid_at = record.lsn
                break
            loaded.append(record)
        active = self.segments.active
        if invalid_at is not None and (
                active.first_lsn is None or invalid_at < active.first_lsn):
            raise WALError(
                f"corrupt record at lsn {invalid_at} in a sealed WAL "
                "segment (scrub or restore from backup)")
        self.records = loaded
        if loaded:
            self._next_lsn = loaded[-1].lsn + 1
            self.compacted_below = loaded[0].lsn
        self._flushed_upto = len(loaded)
        for record in loaded:
            self._note_record(record)
        # rewrite the active segment's validated prefix (drops any torn
        # tail) and reopen it for append
        lines = []
        survivors = []
        if active.first_lsn is not None:
            survivors = [r for r in loaded if r.lsn >= active.first_lsn]
            lines = [json.dumps(record_to_wire(r), default=str) + "\n"
                     for r in survivors]
        active.first_lsn = survivors[0].lsn if survivors else None
        active.last_lsn = survivors[-1].lsn if survivors else None
        self.segments.rewrite_active(lines)

    def close(self) -> None:
        """Flush and release the backing file (no-op when in-memory)."""
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None
        if self.segments is not None:
            self.flush()
            self.segments.close()

    # -- validation --------------------------------------------------------

    def _validated(self) -> List[LogRecord]:
        """The durable prefix that passes checksum validation.

        Stops at the first torn/corrupt record: a record whose checksum
        fails proves the write tore there, and nothing after it can be
        trusted to have reached disk intact.
        """
        out = []
        for record in self.records[:self._flushed_upto]:
            if not record.is_valid():
                break
            out.append(record)
        return out

    def first_corrupt_lsn(self) -> Optional[int]:
        """LSN of the first torn/corrupt durable record (None when clean)."""
        for record in self.records[:self._flushed_upto]:
            if not record.is_valid():
                return record.lsn
        return None

    def durable_records(self) -> Iterator[LogRecord]:
        """Records that survived the last flush intact (what replay sees)."""
        return iter(self._validated())

    def replay(self) -> dict:
        """Reconstruct committed table contents from the durable log.

        Returns ``{table_name: [row_tuple, ...]}`` for all rows inserted
        by committed transactions and not deleted by committed
        transactions — the durable state a restarted engine would load.
        The log is truncated at the first corrupt/torn record, and a
        transaction whose abort is on record is never replayed even if a
        stray commit record precedes it (a commit whose flush failed).
        """
        durable = self._validated()
        committed = set()
        aborted = set()
        for record in durable:
            if record.kind == COMMIT:
                committed.add(record.txid)
            elif record.kind == ABORT:
                aborted.add(record.txid)
        committed -= aborted
        tables: dict = {}
        live: dict = {}
        for record in durable:
            if record.txid not in committed:
                continue
            if record.kind == INSERT:
                live.setdefault(record.table, {})[record.rid] = record.after
            elif record.kind == DELETE:
                live.setdefault(record.table, {}).pop(record.rid, None)
            elif record.kind == UPDATE:
                live.setdefault(record.table, {})[record.rid] = record.after
        for table, rows in live.items():
            if rows:
                tables[table] = list(rows.values())
        return tables

    def latest_checkpoint(self, name: str):
        """Most recent durable cq_checkpoint payload for ``name`` (or None).

        Compaction never archives past the latest checkpoint of a live
        CQ, so this normally finds it in memory; the archive fallback
        covers a standby promoting after its *local* compaction ran
        (the anchor LSN is tracked, so the fallback reads exactly one
        archived record instead of scanning).
        """
        for record in reversed(self._validated()):
            if record.kind == CHECKPOINT and record.table == name:
                return record.payload
        if self.segments is not None:
            lsn = self._checkpoint_lsns.get(name)
            if lsn is not None and lsn < self.compacted_below:
                for wire in self.segments.archived_records(lsn, lsn):
                    record = record_from_wire(wire)
                    if record.is_valid() and record.kind == CHECKPOINT \
                            and record.table == name:
                        return record.payload
        return None

    def checkpoint_anchor_lsn(self, live_names=None) -> Optional[int]:
        """Lowest LSN any (live) CQ's latest checkpoint sits at.

        Compaction must retain the segment holding it.  ``live_names``
        restricts the anchors to CQs that still exist; None keeps all.
        """
        lsns = [lsn for name, lsn in self._checkpoint_lsns.items()
                if live_names is None or name in live_names]
        return min(lsns) if lsns else None

    @property
    def durable_lsn(self) -> int:
        """LSN of the newest record known durable (0 when none are)."""
        if self._flushed_upto > 0 and self.records:
            return self.records[self._flushed_upto - 1].lsn
        return self.compacted_below - 1

    def __len__(self):
        return len(self.records)


def _value_bytes(values) -> int:
    if values is None:
        return 0
    total = 0
    for value in values:
        if isinstance(value, str):
            total += 4 + len(value)
        else:
            total += 8
    return total


def _payload_bytes(payload) -> int:
    if payload is None:
        return 0
    # checkpoint payloads are nested dict/list structures; a rough size
    return len(repr(payload))
