"""Write-ahead log.

The WAL serves two masters, as in the paper (Section 4):

- durability of *tables*: every insert/update/delete is logged before the
  owning transaction commits, and :func:`WriteAheadLog.replay` rebuilds
  table contents after a crash;
- recovery of *CQ runtime state*: the checkpoint-based strategy writes
  serialized operator state as ``cq_checkpoint`` records, which
  :mod:`repro.streaming.recovery` contrasts with the paper's preferred
  rebuild-from-active-tables strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

# record kinds
INSERT = "insert"
DELETE = "delete"
UPDATE = "update"
COMMIT = "commit"
ABORT = "abort"
CHECKPOINT = "cq_checkpoint"

#: approximate bytes per log record header, for flush cost accounting
_RECORD_OVERHEAD = 40


@dataclass
class LogRecord:
    """One WAL entry."""

    lsn: int
    txid: int
    kind: str
    table: Optional[str] = None
    rid: Optional[tuple] = None
    before: Optional[tuple] = None
    after: Optional[tuple] = None
    payload: Optional[object] = None  # checkpoint state


class WriteAheadLog:
    """An in-memory append-only log with disk-flush cost accounting.

    Records accumulate in a tail buffer; :meth:`flush` charges the
    simulated disk one sequential page write per page of buffered bytes
    (group commit).  The engine flushes on every commit.
    """

    #: file id used when charging the simulated disk
    WAL_FILE_ID = 0

    def __init__(self, disk=None, page_size: int = 8192):
        self.disk = disk
        self.page_size = page_size
        self.records = []
        self._next_lsn = 1
        self._unflushed_bytes = 0
        self._flushed_upto = 0  # index into records
        self._next_wal_page = 0
        self.flush_count = 0

    def append(self, txid: int, kind: str, table: str = None, rid=None,
               before=None, after=None, payload=None) -> LogRecord:
        """Add a record to the tail buffer (not yet durable)."""
        record = LogRecord(self._next_lsn, txid, kind, table, rid,
                           before, after, payload)
        self._next_lsn += 1
        self.records.append(record)
        self._unflushed_bytes += _RECORD_OVERHEAD + _value_bytes(before) \
            + _value_bytes(after) + _payload_bytes(payload)
        return record

    def flush(self) -> None:
        """Make all buffered records durable; charges sequential writes."""
        if self._flushed_upto == len(self.records):
            return
        pages = max(1, -(-self._unflushed_bytes // self.page_size))
        if self.disk is not None:
            for _ in range(pages):
                self.disk.write_page(self.WAL_FILE_ID, self._next_wal_page)
                self._next_wal_page += 1
        self._unflushed_bytes = 0
        self._flushed_upto = len(self.records)
        self.flush_count += 1

    def durable_records(self) -> Iterator[LogRecord]:
        """Records that survived the last flush (what replay sees)."""
        return iter(self.records[:self._flushed_upto])

    def replay(self) -> dict:
        """Reconstruct committed table contents from the durable log.

        Returns ``{table_name: [row_tuple, ...]}`` for all rows inserted
        by committed transactions and not deleted by committed
        transactions — the durable state a restarted engine would load.
        """
        committed = set()
        for record in self.durable_records():
            if record.kind == COMMIT:
                committed.add(record.txid)
        tables: dict = {}
        live: dict = {}
        for record in self.durable_records():
            if record.txid not in committed:
                continue
            if record.kind == INSERT:
                live.setdefault(record.table, {})[record.rid] = record.after
            elif record.kind == DELETE:
                live.setdefault(record.table, {}).pop(record.rid, None)
            elif record.kind == UPDATE:
                live.setdefault(record.table, {})[record.rid] = record.after
        for table, rows in live.items():
            if rows:
                tables[table] = list(rows.values())
        return tables

    def latest_checkpoint(self, name: str):
        """Most recent durable cq_checkpoint payload for ``name`` (or None)."""
        for record in reversed(self.records[:self._flushed_upto]):
            if record.kind == CHECKPOINT and record.table == name:
                return record.payload
        return None

    def __len__(self):
        return len(self.records)


def _value_bytes(values) -> int:
    if values is None:
        return 0
    total = 0
    for value in values:
        if isinstance(value, str):
            total += 4 + len(value)
        else:
            total += 8
    return total


def _payload_bytes(payload) -> int:
    if payload is None:
        return 0
    # checkpoint payloads are nested dict/list structures; a rough size
    return len(repr(payload))
