"""Segment files for the segmented write-ahead log.

A segmented WAL is a directory of fixed-size rolling segment files::

    wal/
      wal.000001.log        sealed (full) segment
      wal.000002.log        sealed segment
      wal.000003.log        active segment (append target)
      wal.manifest.json     advisory manifest (rewritten on every roll)

plus a sibling archive directory that compaction moves whole sealed
segments into.  Each segment holds the same JSON-lines records as the
single-file WAL, so every durability property — per-record CRC,
truncate-at-first-corrupt replay of the active tail — carries over
unchanged; segmentation only adds *lifecycle*: segments seal, get
archived below the checkpoint/replication low-water mark, serve lagging
standbys from the archive, and feed online backups.

Crash safety is directory-truth based: the manifest is advisory.  A
compaction copies the segment into the archive under a temporary name,
renames it into place, and only then deletes the live copy — a crash
between those steps leaves the segment present in *both* places, and
:meth:`SegmentedLog.load` reconciles by deleting the live duplicate.
No ordering of crash and compaction can lose a durable record.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WALError

SEGMENT_RE = re.compile(r"^wal\.(\d{6})\.log$")
MANIFEST_NAME = "wal.manifest.json"
QUARANTINE_DIRNAME = "quarantine"

#: default size at which the active segment seals and rolls
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


def segment_name(index: int) -> str:
    return f"wal.{index:06d}.log"


@dataclass
class Segment:
    """Book-keeping for one segment file."""

    index: int
    first_lsn: Optional[int] = None   # None until the first record lands
    last_lsn: Optional[int] = None
    bytes: int = 0
    sealed: bool = False
    archived: bool = False

    def covers(self, lsn: int) -> bool:
        return (self.first_lsn is not None and self.last_lsn is not None
                and self.first_lsn <= lsn <= self.last_lsn)

    def manifest_entry(self) -> dict:
        return {"name": segment_name(self.index), "index": self.index,
                "first_lsn": self.first_lsn, "last_lsn": self.last_lsn,
                "bytes": self.bytes, "sealed": self.sealed,
                "archived": self.archived}


class SegmentedLog:
    """The file layer of a segmented WAL: naming, rolling, archiving.

    Owns no record semantics — :class:`~repro.storage.wal.WriteAheadLog`
    validates CRCs and decides what is durable; this class only moves
    bytes between the live directory, the archive and backups.
    """

    def __init__(self, live_dir: str, archive_dir: Optional[str] = None,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        self.live_dir = live_dir
        self.archive_dir = (archive_dir if archive_dir is not None
                            else os.path.join(
                                os.path.dirname(live_dir.rstrip(os.sep))
                                or ".", "wal_archive"))
        self.segment_bytes = max(1, int(segment_bytes))
        self.segments: List[Segment] = []   # index order, archive first
        self.active: Optional[Segment] = None
        self.active_fh = None
        self.rolls = 0
        self.archived_total = 0
        self.quarantined_total = 0

    # -- paths -------------------------------------------------------------

    def live_path(self, segment: Segment) -> str:
        return os.path.join(self.live_dir, segment_name(segment.index))

    def archive_path(self, segment: Segment) -> str:
        return os.path.join(self.archive_dir, segment_name(segment.index))

    def path_of(self, segment: Segment) -> str:
        return (self.archive_path(segment) if segment.archived
                else self.live_path(segment))

    def quarantine_dir(self) -> str:
        return os.path.join(self.archive_dir, QUARANTINE_DIRNAME)

    # -- load / reconcile --------------------------------------------------

    def load(self) -> List[dict]:
        """Reconcile the directories and read every record, in order.

        Returns the parsed wire dicts of all records across archive +
        live segments (unvalidated — the WAL applies the CRC contract).
        A segment present in both the archive and the live directory is
        a crash mid-compaction: the archive copy is complete (it was
        renamed into place), so the live duplicate is deleted.  Leftover
        ``*.tmp`` files from an interrupted copy are removed.
        """
        os.makedirs(self.live_dir, exist_ok=True)
        live = self._scan_dir(self.live_dir)
        archived = self._scan_dir(self.archive_dir)
        if os.path.isdir(self.archive_dir):
            for name in os.listdir(self.archive_dir):
                if name.endswith(".tmp"):
                    os.remove(os.path.join(self.archive_dir, name))
        for index in set(live) & set(archived):
            os.remove(live.pop(index))

        self.segments = []
        records: List[dict] = []
        expected_next: Optional[int] = None
        indexes = sorted(set(live) | set(archived))
        for pos, index in enumerate(indexes):
            is_archived = index in archived
            path = archived[index] if is_archived else live[index]
            seg = Segment(index, archived=is_archived,
                          sealed=is_archived or pos < len(indexes) - 1)
            wires, seg.bytes, torn = _read_segment(path)
            last_file = pos == len(indexes) - 1 and not is_archived
            if torn and not last_file:
                raise WALError(
                    f"corrupt sealed WAL segment {path!r}: unparsable "
                    "record in a non-active segment (scrub or restore "
                    "from backup)")
            if wires:
                seg.first_lsn = int(wires[0]["lsn"])
                seg.last_lsn = int(wires[-1]["lsn"])
                if expected_next is not None \
                        and seg.first_lsn != expected_next:
                    raise WALError(
                        f"WAL gap: segment {segment_name(index)} starts "
                        f"at lsn {seg.first_lsn}, expected "
                        f"{expected_next} (missing lsns {expected_next}.."
                        f"{seg.first_lsn - 1}; quarantined or lost "
                        "segment — restore from backup)")
                expected_next = seg.last_lsn + 1
            self.segments.append(seg)
            records.extend(wires)

        # the highest-index live segment becomes (or stays) active
        tail = self.segments[-1] if self.segments else None
        if tail is not None and not tail.archived:
            tail.sealed = False
            self.active = tail
        else:
            next_index = (self.segments[-1].index + 1
                          if self.segments else 1)
            self.active = Segment(next_index)
            self.segments.append(self.active)
        self.write_manifest()
        return records

    def _scan_dir(self, path: str) -> Dict[int, str]:
        out: Dict[int, str] = {}
        if not os.path.isdir(path):
            return out
        for name in os.listdir(path):
            match = SEGMENT_RE.match(name)
            if match:
                out[int(match.group(1))] = os.path.join(path, name)
        return out

    def rewrite_active(self, lines: List[str]) -> None:
        """Rewrite the active segment to the given validated lines and
        reopen it for append (the truncate-at-first-corrupt contract)."""
        path = self.live_path(self.active)
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line)
        self.active.bytes = sum(len(line) for line in lines)
        self.open_active()

    def open_active(self) -> None:
        self.active_fh = open(self.live_path(self.active), "a",
                              encoding="utf-8")

    # -- append / roll -----------------------------------------------------

    def write(self, lsn: int, data: str) -> None:
        """Append one encoded record (or torn fragment) to the active
        segment.  The caller flushes."""
        seg = self.active
        if seg.first_lsn is None:
            seg.first_lsn = lsn
        seg.last_lsn = lsn
        seg.bytes += len(data)
        self.active_fh.write(data)

    def flush(self) -> None:
        if self.active_fh is not None:
            self.active_fh.flush()

    def should_roll(self) -> bool:
        return (self.active is not None
                and self.active.first_lsn is not None
                and self.active.bytes >= self.segment_bytes)

    def roll(self) -> Segment:
        """Seal the active segment and open the next one.

        The sealed segment's records are already durable (roll happens
        after flush), so a crash here at worst leaves a sealed segment
        the manifest does not know about — load() trusts the directory.
        """
        sealed = self.active
        if self.active_fh is not None:
            self.active_fh.flush()
            self.active_fh.close()
            self.active_fh = None
        sealed.sealed = True
        self.active = Segment(sealed.index + 1)
        self.segments.append(self.active)
        self.open_active()
        self.rolls += 1
        self.write_manifest()
        return sealed

    def close(self) -> None:
        if self.active_fh is not None:
            self.active_fh.flush()
            self.active_fh.close()
            self.active_fh = None

    # -- archive -----------------------------------------------------------

    def sealed_live_segments(self) -> List[Segment]:
        return [seg for seg in self.segments
                if seg.sealed and not seg.archived]

    def archived_segments(self) -> List[Segment]:
        return [seg for seg in self.segments if seg.archived]

    def archive_segment(self, segment: Segment, faults=None) -> str:
        """Move one sealed live segment into the archive, crash-safely.

        Copy to ``<name>.tmp`` in the archive, rename into place, fire
        the ``wal.compact`` crashpoint (simulating a crash at the worst
        moment: the segment now exists in both directories), then delete
        the live copy.
        """
        if not segment.sealed or segment.archived:
            raise WALError(f"segment {segment_name(segment.index)} is "
                           "not a sealed live segment")
        os.makedirs(self.archive_dir, exist_ok=True)
        src = self.live_path(segment)
        dst = self.archive_path(segment)
        tmp = dst + ".tmp"
        shutil.copyfile(src, tmp)
        os.replace(tmp, dst)
        if faults is not None and faults.armed:
            faults.check("wal.compact", segment_name(segment.index))
        os.remove(src)
        segment.archived = True
        self.archived_total += 1
        self.write_manifest()
        return dst

    def quarantine_segment(self, segment: Segment) -> str:
        """Move a corrupt *archived* segment into the quarantine dir."""
        os.makedirs(self.quarantine_dir(), exist_ok=True)
        src = self.archive_path(segment)
        dst = os.path.join(self.quarantine_dir(),
                           segment_name(segment.index))
        os.replace(src, dst)
        self.segments = [s for s in self.segments if s is not segment]
        self.quarantined_total += 1
        self.write_manifest()
        return dst

    # -- reads -------------------------------------------------------------

    def read_segment(self, segment: Segment) -> List[dict]:
        wires, _bytes, _torn = _read_segment(self.path_of(segment))
        return wires

    def archived_records(self, from_lsn: int,
                         to_lsn: Optional[int] = None) -> List[dict]:
        """Wire records with ``from_lsn <= lsn [<= to_lsn]`` from the
        archive, in LSN order."""
        out: List[dict] = []
        for seg in self.archived_segments():
            if seg.last_lsn is None or seg.last_lsn < from_lsn:
                continue
            if to_lsn is not None and seg.first_lsn is not None \
                    and seg.first_lsn > to_lsn:
                break
            for wire in self.read_segment(seg):
                lsn = int(wire["lsn"])
                if lsn < from_lsn:
                    continue
                if to_lsn is not None and lsn > to_lsn:
                    break
                out.append(wire)
        return out

    def archive_floor_lsn(self) -> Optional[int]:
        """Lowest LSN the archive still holds (None when empty)."""
        for seg in self.archived_segments():
            if seg.first_lsn is not None:
                return seg.first_lsn
        return None

    # -- stats -------------------------------------------------------------

    def live_bytes(self) -> int:
        return sum(seg.bytes for seg in self.segments if not seg.archived)

    def archive_bytes(self) -> int:
        return sum(seg.bytes for seg in self.segments if seg.archived)

    def live_count(self) -> int:
        return sum(1 for seg in self.segments if not seg.archived)

    # -- manifest ----------------------------------------------------------

    def manifest_path(self) -> str:
        return os.path.join(self.live_dir, MANIFEST_NAME)

    def write_manifest(self) -> None:
        manifest = {
            "segment_bytes": self.segment_bytes,
            "archive_dir": self.archive_dir,
            "active_index": self.active.index if self.active else None,
            "segments": [seg.manifest_entry() for seg in self.segments],
        }
        tmp = self.manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1)
        os.replace(tmp, self.manifest_path())

    def read_manifest(self) -> Optional[dict]:
        try:
            with open(self.manifest_path(), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None


def _read_segment(path: str) -> Tuple[List[dict], int, bool]:
    """Parse one segment file: (wire dicts, file bytes, torn tail seen).

    Parsing stops at the first unparsable line; the caller decides
    whether a torn tail is acceptable (active segment) or fatal (sealed
    segment).  CRC validation stays with the WAL.
    """
    wires: List[dict] = []
    size = 0
    torn = False
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            size += len(line)
            stripped = line.strip()
            if not stripped:
                continue
            try:
                fields = json.loads(stripped)
                fields["lsn"]
            except (ValueError, KeyError, TypeError):
                torn = True
                break
            wires.append(fields)
    return wires, size, torn


def verify_segment(path: str) -> Tuple[int, Optional[str]]:
    """Scrub one segment file: re-validate every record's CRC.

    Returns ``(records_ok, error)`` where ``error`` is None for a clean
    segment, else a description of the first corruption found.
    """
    from repro.storage.wal import record_from_wire
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = record_from_wire(json.loads(stripped))
            except (ValueError, KeyError, TypeError) as exc:
                return count, f"line {lineno}: unparsable record ({exc})"
            if not record.is_valid():
                return count, (f"line {lineno}: CRC mismatch at lsn "
                               f"{record.lsn} (stored {record.crc}, "
                               f"content {record.content_crc()})")
            count += 1
    return count, None
