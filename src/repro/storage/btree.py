"""A B+tree secondary index over (key tuple) → row ids.

Keys are tuples of SQL values ordered with NULLS LAST (via
:func:`repro.types.values.sql_sort_key`).  Duplicate keys are supported —
each leaf entry is a bucket of rids.  Node accesses are routed through the
buffer pool so indexed plans are charged honest (simulated) I/O, which is
what experiment E7/A2 measures (Section 3.3: "indexes can be defined over
[active tables] to further improve query performance").

Deletion is lazy (no rebalancing): entries are removed from buckets and
empty buckets from leaves, but underfull nodes are tolerated.  This keeps
the structure correct under churn without the rebalance state machine.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.types.values import sql_sort_key

#: maximum keys per node before a split
DEFAULT_ORDER = 64


def make_key(values) -> tuple:
    """Wrap raw SQL values into a totally-ordered key tuple."""
    return tuple(sql_sort_key(v) for v in values)


class _Node:
    __slots__ = ("page_no", "keys", "is_leaf")

    def __init__(self, page_no: int, is_leaf: bool):
        self.page_no = page_no
        self.keys: List[tuple] = []
        self.is_leaf = is_leaf


class _Leaf(_Node):
    __slots__ = ("buckets", "next_leaf")

    def __init__(self, page_no: int):
        super().__init__(page_no, True)
        self.buckets: List[list] = []
        self.next_leaf: Optional[int] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, page_no: int):
        super().__init__(page_no, False)
        self.children: List[int] = []


class BPlusTree:
    """The index object registered in the catalog."""

    def __init__(self, name: str, table_name: str, column_names,
                 pool=None, file_id: int = -1, unique: bool = False,
                 order: int = DEFAULT_ORDER):
        self.name = name
        self.table_name = table_name
        self.column_names = list(column_names)
        self.unique = unique
        self.order = order
        self.file_id = file_id
        self._pool = pool
        self._nodes = {}
        self._next_page = 0
        root = self._new_leaf()
        self._root_no = root.page_no
        self.entry_count = 0

    # -- buffer-pool plumbing -------------------------------------------------
    # The tree masquerades as a heap file: the pool calls .page(n) on a miss.

    def page(self, page_no: int):
        return self._nodes[page_no]

    def _touch(self, page_no: int) -> _Node:
        """Fetch a node, charging the buffer pool when one is attached."""
        if self._pool is not None:
            return self._pool.fetch(self, page_no)
        return self._nodes[page_no]

    def _dirty(self, page_no: int) -> None:
        if self._pool is not None:
            self._pool.mark_dirty(self, page_no)

    def _register(self, node: _Node) -> None:
        self._nodes[node.page_no] = node
        if self._pool is not None:
            self._pool.fetch_new(self, node)

    def _new_leaf(self) -> _Leaf:
        node = _Leaf(self._next_page)
        self._next_page += 1
        self._register(node)
        return node

    def _new_internal(self) -> _Internal:
        node = _Internal(self._next_page)
        self._next_page += 1
        self._register(node)
        return node

    # -- search ---------------------------------------------------------------

    def _descend(self, key: tuple) -> Tuple[_Leaf, list]:
        """Walk to the leaf for ``key``; returns (leaf, path of internals)."""
        path = []
        node = self._touch(self._root_no)
        while not node.is_leaf:
            path.append(node)
            i = bisect.bisect_right(node.keys, key)
            node = self._touch(node.children[i])
        return node, path

    def search(self, values) -> list:
        """All rids whose key equals ``values`` (empty list if none)."""
        key = make_key(values)
        leaf, _path = self._descend(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return list(leaf.buckets[i])
        return []

    def range_scan(self, low=None, high=None, low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[tuple]:
        """Yield rids with low <= key <= high (bounds optional).

        ``low``/``high`` are raw value tuples; None means unbounded.
        """
        if low is not None:
            key = make_key(low)
            leaf, _path = self._descend(key)
            if low_inclusive:
                i = bisect.bisect_left(leaf.keys, key)
            else:
                i = bisect.bisect_right(leaf.keys, key)
        else:
            leaf = self._leftmost_leaf()
            i = 0
        high_key = make_key(high) if high is not None else None
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if high_key is not None:
                    if high_inclusive:
                        if high_key < key:
                            return
                    elif not (key < high_key):
                        return
                for rid in leaf.buckets[i]:
                    yield rid
                i += 1
            if leaf.next_leaf is None:
                return
            leaf = self._touch(leaf.next_leaf)
            i = 0

    def _leftmost_leaf(self) -> _Leaf:
        node = self._touch(self._root_no)
        while not node.is_leaf:
            node = self._touch(node.children[0])
        return node

    def items(self) -> Iterator[tuple]:
        """Yield every rid in key order."""
        yield from self.range_scan()

    # -- insert ---------------------------------------------------------------

    def insert(self, values, rid) -> None:
        """Add ``rid`` under key ``values`` (duplicates append to bucket)."""
        key = make_key(values)
        leaf, path = self._descend(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.buckets[i].append(rid)
        else:
            leaf.keys.insert(i, key)
            leaf.buckets.insert(i, [rid])
        self.entry_count += 1
        self._dirty(leaf.page_no)
        if len(leaf.keys) > self.order:
            self._split_leaf(leaf, path)

    def _split_leaf(self, leaf: _Leaf, path: list) -> None:
        mid = len(leaf.keys) // 2
        sibling = self._new_leaf()
        sibling.keys = leaf.keys[mid:]
        sibling.buckets = leaf.buckets[mid:]
        sibling.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:mid]
        leaf.buckets = leaf.buckets[:mid]
        leaf.next_leaf = sibling.page_no
        self._dirty(leaf.page_no)
        self._dirty(sibling.page_no)
        self._insert_into_parent(leaf, sibling.keys[0], sibling, path)

    def _split_internal(self, node: _Internal, path: list) -> None:
        mid = len(node.keys) // 2
        push_key = node.keys[mid]
        sibling = self._new_internal()
        sibling.keys = node.keys[mid + 1:]
        sibling.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self._dirty(node.page_no)
        self._dirty(sibling.page_no)
        self._insert_into_parent(node, push_key, sibling, path)

    def _insert_into_parent(self, left: _Node, key: tuple, right: _Node,
                            path: list) -> None:
        if not path:
            root = self._new_internal()
            root.keys = [key]
            root.children = [left.page_no, right.page_no]
            self._root_no = root.page_no
            self._dirty(root.page_no)
            return
        parent = path[-1]
        i = bisect.bisect_right(parent.keys, key)
        parent.keys.insert(i, key)
        parent.children.insert(i + 1, right.page_no)
        self._dirty(parent.page_no)
        if len(parent.keys) > self.order:
            self._split_internal(parent, path[:-1])

    # -- delete ---------------------------------------------------------------

    def delete(self, values, rid) -> bool:
        """Remove one (key, rid) entry; returns True when found."""
        key = make_key(values)
        leaf, _path = self._descend(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            return False
        bucket = leaf.buckets[i]
        try:
            bucket.remove(rid)
        except ValueError:
            return False
        if not bucket:
            leaf.keys.pop(i)
            leaf.buckets.pop(i)
        self.entry_count -= 1
        self._dirty(leaf.page_no)
        return True

    def __len__(self):
        return self.entry_count
