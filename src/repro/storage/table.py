"""MVCC-aware tables: schema + heap file + index maintenance + WAL.

This is the "persistent structure" side of the paper's core principle
(Section 2.3): stored data is streaming data that has been entered into
tables and indexes.  Channels write here; snapshot queries read here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.catalog.schema import Schema
from repro.storage.heap import HeapFile
from repro.storage.page import RowVersion
from repro.txn.mvcc import Snapshot, Transaction


@dataclass
class TableStats:
    """Planner statistics collected by ANALYZE."""

    row_count: int = 0
    page_count: int = 0
    #: column name -> (n_distinct, null_fraction)
    columns: Dict[str, tuple] = field(default_factory=dict)


class Table:
    """A named, durable, multi-versioned relation."""

    def __init__(self, name: str, schema: Schema, heap: HeapFile,
                 pool, wal=None):
        self.name = name
        self.schema = schema
        self.heap = heap
        self._pool = pool
        self._wal = wal
        self._indexes = []  # BPlusTree objects maintained on write
        self.stats: Optional[TableStats] = None  # set by ANALYZE

    # -- index maintenance ----------------------------------------------------

    def attach_index(self, index) -> None:
        """Register an index and backfill it from current contents."""
        self._indexes.append(index)
        positions = [self.schema.index_of(c) for c in index.column_names]
        for rid, version in self.heap.scan(self._pool):
            if version.xmax is None:
                index.insert(tuple(version.values[i] for i in positions), rid)

    def detach_index(self, index) -> None:
        self._indexes.remove(index)

    def indexes(self):
        return list(self._indexes)

    def _index_insert(self, values: tuple, rid) -> None:
        for index in self._indexes:
            positions = [self.schema.index_of(c) for c in index.column_names]
            index.insert(tuple(values[i] for i in positions), rid)

    def _index_delete(self, values: tuple, rid) -> None:
        for index in self._indexes:
            positions = [self.schema.index_of(c) for c in index.column_names]
            index.delete(tuple(values[i] for i in positions), rid)

    # -- write path -------------------------------------------------------------

    def insert(self, txn: Transaction, values) -> tuple:
        """Insert one row inside ``txn``; returns its rid."""
        row = self.schema.coerce_row(values)
        version = RowVersion(txn.txid, row)
        rid = self.heap.insert(self._pool, version)
        if self._wal is not None:
            self._wal.append(txn.txid, "insert", self.name, rid, after=row)
        self._index_insert(row, rid)
        txn.inserted.append((self, rid, row))
        return rid

    def delete_version(self, txn: Transaction, rid, version: RowVersion) -> None:
        """Mark ``version`` deleted by ``txn`` (MVCC: set xmax)."""
        version.xmax = txn.txid
        self.heap.mark_updated(self._pool, rid)
        if self._wal is not None:
            self._wal.append(txn.txid, "delete", self.name, rid,
                             before=version.values)
        txn.deleted.append((self, rid, version))

    def update_version(self, txn: Transaction, rid, version: RowVersion,
                       new_values) -> tuple:
        """MVCC update: delete old version, insert the replacement."""
        self.delete_version(txn, rid, version)
        return self.insert(txn, new_values)

    def truncate(self, txn: Transaction) -> int:
        """Delete every version visible to ``txn`` (REPLACE channels,
        TRUNCATE); returns how many rows were deleted."""
        deleted = 0
        for rid, version in list(self.heap.scan(self._pool)):
            if version.xmax is None:
                self.delete_version(txn, rid, version)
                deleted += 1
        return deleted

    # -- abort undo hooks (called by the transaction manager) -------------------

    def on_abort_remove(self, rid, values: tuple) -> None:
        self._index_delete(values, rid)
        self.heap.remove(self._pool, rid)

    def on_abort_undelete(self, rid) -> None:
        self.heap.mark_updated(self._pool, rid)

    # -- read path ---------------------------------------------------------------

    def scan(self, snapshot: Snapshot, manager,
             own_txid: Optional[int] = None) -> Iterator[Tuple[tuple, tuple]]:
        """Yield (rid, values) for rows visible under ``snapshot``."""
        for rid, version in self.heap.scan(self._pool):
            if manager.visible(version, snapshot, own_txid):
                yield rid, version.values

    def fetch(self, rid, snapshot: Snapshot, manager,
              own_txid: Optional[int] = None) -> Optional[tuple]:
        """Fetch one row by rid if visible, else None (for index scans)."""
        version = self.heap.read(self._pool, rid)
        if version is None:
            return None
        if manager.visible(version, snapshot, own_txid):
            return version.values
        return None

    def visible_version(self, rid, snapshot, manager, own_txid=None):
        """Like :meth:`fetch` but returns the RowVersion (for DML)."""
        version = self.heap.read(self._pool, rid)
        if version is None:
            return None
        if manager.visible(version, snapshot, own_txid):
            return version
        return None

    def row_count(self, snapshot: Snapshot, manager) -> int:
        """Number of visible rows (scans the heap)."""
        return sum(1 for _ in self.scan(snapshot, manager))

    # -- maintenance ------------------------------------------------------------

    def analyze(self, snapshot: Snapshot, manager) -> TableStats:
        """Collect planner statistics over the visible rows."""
        distinct = [set() for _ in self.schema]
        nulls = [0] * len(self.schema)
        rows = 0
        for _rid, values in self.scan(snapshot, manager):
            rows += 1
            for i, value in enumerate(values):
                if value is None:
                    nulls[i] += 1
                else:
                    distinct[i].add(value)
        columns = {}
        for i, column in enumerate(self.schema):
            null_frac = nulls[i] / rows if rows else 0.0
            columns[column.name] = (len(distinct[i]), null_frac)
        self.stats = TableStats(rows, self.heap.page_count, columns)
        return self.stats

    def estimated_rows(self) -> int:
        """Planner row estimate: ANALYZE stats or the live slot count."""
        if self.stats is not None:
            return self.stats.row_count
        return self.heap.row_count

    def vacuum(self, manager) -> int:
        """Physically remove dead versions (committed deletes no live
        snapshot can see, plus aborted leftovers); returns how many."""
        removed = 0
        for rid, version in list(self.heap.scan(self._pool)):
            if manager.is_dead(version):
                self._index_delete(version.values, rid)
                self.heap.remove(self._pool, rid)
                removed += 1
        return removed

    def __repr__(self):
        return f"Table({self.name}, {self.heap.page_count} pages)"
