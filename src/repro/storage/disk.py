"""The simulated disk: I/O counters and a latency cost model.

The paper's performance claims are architectural — store-first-query-later
pays to write data to disk and read it back; continuous analytics does not
(Sections 1.3, 2.2, 4).  We reproduce the *shape* of those claims on a
laptop by charging every page read/write against a configurable cost model
(seek time + transfer time, with sequential-access detection) and reporting
simulated seconds alongside wall-clock time.

Defaults model a single 2009-era enterprise disk: 8 ms seek, 100 MB/s
sequential transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DiskStats:
    """A snapshot of I/O counters (subtractable for interval accounting)."""

    pages_read: int = 0
    pages_written: int = 0
    seeks: int = 0
    sequential_reads: int = 0
    sequential_writes: int = 0

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            self.pages_read - other.pages_read,
            self.pages_written - other.pages_written,
            self.seeks - other.seeks,
            self.sequential_reads - other.sequential_reads,
            self.sequential_writes - other.sequential_writes,
        )


@dataclass
class SimulatedDisk:
    """Counts page I/O and converts it to simulated elapsed seconds.

    ``seek_time`` is charged whenever an access does not continue the
    previous access's (file, page+1) sequence; ``transfer_time`` is charged
    for every page moved.
    """

    page_size: int = 8192
    seek_time: float = 0.008
    transfer_rate: float = 100 * 1024 * 1024  # bytes/second, sequential
    stats: DiskStats = field(default_factory=DiskStats)
    faults: object = None  # optional FaultInjector (chaos testing)

    def __post_init__(self):
        self._last_access = None  # (file_id, page_no) of last transfer

    @property
    def transfer_time(self) -> float:
        """Seconds to move one page at the sequential rate."""
        return self.page_size / self.transfer_rate

    def _account(self, file_id: int, page_no: int) -> bool:
        """Record one access; returns True when it was sequential."""
        sequential = self._last_access == (file_id, page_no - 1)
        if not sequential:
            self.stats.seeks += 1
        self._last_access = (file_id, page_no)
        return sequential

    def read_page(self, file_id: int, page_no: int) -> None:
        """Charge one page read."""
        if self.faults is not None:
            self.faults.check("disk.read_page", f"file {file_id} page {page_no}")
        if self._account(file_id, page_no):
            self.stats.sequential_reads += 1
        self.stats.pages_read += 1

    def write_page(self, file_id: int, page_no: int) -> None:
        """Charge one page write."""
        if self.faults is not None:
            self.faults.check("disk.write_page", f"file {file_id} page {page_no}")
        if self._account(file_id, page_no):
            self.stats.sequential_writes += 1
        self.stats.pages_written += 1

    def elapsed_seconds(self, stats: DiskStats = None) -> float:
        """Simulated seconds for ``stats`` (default: all activity so far)."""
        if stats is None:
            stats = self.stats
        transfers = stats.pages_read + stats.pages_written
        return stats.seeks * self.seek_time + transfers * self.transfer_time

    def snapshot(self) -> DiskStats:
        """Copy of the current counters, for interval measurement."""
        return DiskStats(
            self.stats.pages_read,
            self.stats.pages_written,
            self.stats.seeks,
            self.stats.sequential_reads,
            self.stats.sequential_writes,
        )

    def reset(self) -> None:
        """Zero all counters (used between benchmark trials)."""
        self.stats = DiskStats()
        self._last_access = None
