"""An interactive TruSQL shell.

Run::

    python -m repro.cli
    echo "SELECT 1 + 1;" | python -m repro.cli
    python -m repro.cli -c "SELECT 1 + 1"        # one-shot, exits nonzero on error
    python -m repro.cli --connect 127.0.0.1:5433 # drive a repro-server

Statements end with ``;``.  Continuous queries become named
subscriptions whose windows are printed by ``\\poll``.  Backslash
commands:

    \\d              list catalog objects
    \\poll [name]    print pending windows of one/all subscriptions
    \\advance T      heartbeat all streams to event time T
    \\flush          flush all streams (drain pending windows)
    \\supervisor     supervision status of every CQ/stream/channel
    \\deadletters [N] last N quarantined tuples/windows (default 20)
    \\replication    replication role, shipped/applied LSNs, lag
    \\storage        WAL segments, archive, backups, scrub status
    \\watermarks     per-stream event-time watermark, lag, late rows
    \\partitions     per-worker shard, routed rows, watermark, lag
    \\tenants        per-tenant admission counters + controller status
    \\stats [cq]     engine metrics + per-CQ window/operator stats
    \\trace [N]      span trees of the last N sampled tuples (default 5)
    \\timing         toggle wall/sim timing output
    \\q              quit

``repro --standby-of HOST:PORT`` starts a warm standby server of that
primary instead of a shell (see docs/REPLICATION.md).

``SET supervision = on`` enables the supervised runtime;
``SET fault_seed = N`` installs a fault injector (see docs/FAULTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.catalog import catalog as cat
from repro.core.database import Database
from repro.core.results import ResultSet, Subscription
from repro.errors import TruvisoError

PROMPT = "trusql> "
CONTINUE_PROMPT = "   ...> "


class Shell:
    """State and command handling for one CLI session."""

    def __init__(self, db: Database = None, out=None):
        self.db = db if db is not None else Database()
        self.conn = None
        self.out = out if out is not None else sys.stdout
        self.subscriptions = {}
        self._sub_counter = 0
        self.timing = False
        self.errors = 0  # statements that failed (drives -c exit code)

    # -- output ---------------------------------------------------------------

    def write(self, text: str = "") -> None:
        self.out.write(text + "\n")

    # -- command dispatch --------------------------------------------------------

    def handle_line(self, line: str) -> bool:
        """Process one complete input (statement or backslash command).
        Returns False when the shell should exit."""
        stripped = line.strip()
        if not stripped:
            return True
        if stripped.startswith("\\"):
            return self._command(stripped)
        self._statement(stripped)
        return True

    def _command(self, text: str) -> bool:
        parts = text.split()
        command, args = parts[0], parts[1:]
        if command in ("\\q", "\\quit"):
            return False
        if command == "\\d":
            self._describe()
        elif command == "\\poll":
            self._poll(args[0] if args else None)
        elif command == "\\advance":
            if not args:
                self.write("usage: \\advance <event-time-seconds>")
            else:
                self.db.advance_streams(float(args[0]))
                self.write(f"advanced all streams to t={args[0]}")
                self._poll(None)
        elif command == "\\flush":
            self.db.flush_streams()
            self.write("flushed all streams")
            self._poll(None)
        elif command == "\\supervisor":
            self._supervisor()
        elif command == "\\deadletters":
            self._dead_letters(int(args[0]) if args else 20)
        elif command == "\\replication":
            self._replication()
        elif command == "\\storage":
            self._storage()
        elif command == "\\watermarks":
            self._watermarks()
        elif command == "\\partitions":
            self._partitions()
        elif command == "\\tenants":
            self._tenants()
        elif command == "\\stats":
            self._stats(args[0] if args else None)
        elif command == "\\trace":
            self._trace(int(args[0]) if args else 5)
        elif command == "\\timing":
            self.timing = not self.timing
            self.write(f"timing {'on' if self.timing else 'off'}")
        elif command in ("\\h", "\\help", "\\?"):
            self.write(__doc__.strip())
        else:
            self.write(f"unknown command {command}; try \\help")
        return True

    def _describe(self) -> None:
        rows = []
        for name, kind in sorted(
                (name, kind)
                for name, (kind, _obj) in self.db.catalog._relations.items()):
            rows.append(f"  {name:<28} {kind}")
        for name, _channel in sorted(self.db.catalog.channels()):
            rows.append(f"  {name:<28} channel")
        for name, _index in sorted(self.db.catalog.indexes()):
            rows.append(f"  {name:<28} index")
        if rows:
            self.write("\n".join(rows))
        else:
            self.write("(empty catalog)")

    def _poll(self, name) -> None:
        targets = ([(name, self.subscriptions[name])]
                   if name else sorted(self.subscriptions.items()))
        if name and name not in self.subscriptions:
            self.write(f"no subscription named {name!r}")
            return
        for sub_name, sub in targets:
            windows = sub.poll()
            for window in windows:
                kind = getattr(window, "kind", "window")
                self.write(f"-- {sub_name}: {kind} "
                           f"[{window.open_time:g}, {window.close_time:g})")
                result = ResultSet(sub.columns, window.rows)
                self.write(result.pretty())

    def _supervisor(self) -> None:
        if self.db.supervisor is None:
            self.write("supervision is off; SET supervision = on")
            return
        result = self.db.query(
            "SELECT name, kind, state, failures, restarts, dead_letters "
            "FROM repro_supervisor_status")
        if result.rows:
            self.write(result.pretty())
        else:
            self.write("(nothing supervised yet)")

    def _replication(self) -> None:
        result = (self.db or self.conn).query(
            "SELECT role, peer, state, shipped_lsn, applied_lsn, lag, "
            "last_error FROM repro_replication_status")
        self.write(result.pretty())

    def _storage(self) -> None:
        """WAL lifecycle status (repro_storage)."""
        source = self.db if self.db is not None else self.conn
        result = source.query(
            "SELECT mode, live_segments, live_bytes, archive_segments, "
            "archive_bytes, head_lsn, low_water_lsn, last_backup_lsn, "
            "backups, scrubs, scrub_errors, quarantined "
            "FROM repro_storage")
        self.write(result.pretty())

    def _watermarks(self) -> None:
        """Per-stream event-time watermark status (repro_watermarks)."""
        source = self.db if self.db is not None else self.conn
        result = source.query(
            "SELECT stream, mode, bound_seconds, watermark, "
            "max_event_time, lag_seconds, late_rows, injections "
            "FROM repro_watermarks")
        if result.rows:
            self.write(result.pretty())
        else:
            self.write("(no streams yet)")

    def _partitions(self) -> None:
        """Partition-worker status (repro_partitions)."""
        source = self.db if self.db is not None else self.conn
        result = source.query(
            "SELECT worker, pid, state, transport, streams, rows_routed, "
            "batches, spill_rows, watermark, lag_seconds, restarts, "
            "replayed_batches FROM repro_partitions")
        if result.rows:
            self.write(result.pretty())
        else:
            self.write("(not a partition coordinator; see docs/PARTITION.md)")

    def _tenants(self) -> None:
        """Admission-control status: controller tier + per-tenant counters."""
        source = self.db if self.db is not None else self.conn
        admission = source.query(
            "SELECT enabled, tier, queue_depth, soft_depth, hard_depth, "
            "batches_admitted, batches_rejected, batches_shed, duplicates "
            "FROM repro_admission")
        self.write("-- admission")
        self.write(admission.pretty())
        tenants = source.query(
            "SELECT name, sessions, weight, rate_limit, row_quota, "
            "rows_ingested, batches_admitted, batches_rejected, "
            "batches_shed, duplicates FROM repro_tenants")
        if tenants.rows:
            self.write("-- tenants")
            self.write(tenants.pretty())
        else:
            self.write("(no tenants yet; tenants appear at first "
                       "hello/ingest)")

    def _stats(self, cq_name=None) -> None:
        """Engine metrics + per-CQ window and operator stats."""
        source = self.db if self.db is not None else self.conn
        # derived streams register as "derived:<name>"; accept either form
        names = f"'{cq_name}', 'derived:{cq_name}'" if cq_name else ""
        where = f" WHERE name IN ({names})" if cq_name else ""
        cqs = source.query(
            "SELECT name, tuples_in, windows, rows_out, last_window_ms, "
            f"avg_window_ms, max_window_ms, slow_windows "
            f"FROM repro_cq_stats{where}")
        if cqs.rows:
            self.write("-- continuous queries")
            self.write(cqs.pretty())
        op_where = f" WHERE cq IN ({names})" if cq_name else ""
        operators = source.query(
            "SELECT cq, depth, operator, tuples_out, calls, time_ms "
            f"FROM repro_operator_stats{op_where}")
        if operators.rows:
            self.write("-- operators")
            self.write(operators.pretty())
        if cq_name and not cqs.rows and not operators.rows:
            self.write(f"(no stats for '{cq_name}')")
        if not cq_name:
            metrics = source.query(
                "SELECT name, kind, value, count, p50, p95, p99 "
                "FROM repro_metrics")
            self.write("-- metrics")
            self.write(metrics.pretty() if metrics.rows else "(no metrics)")

    def _trace(self, limit: int = 5) -> None:
        """Span trees of the most recent sampled tuples."""
        source = self.db if self.db is not None else self.conn
        rows = source.query(
            "SELECT trace_id, span_id, parent_id, name, duration_ms "
            "FROM repro_traces").rows
        if not rows:
            self.write("(no traces; SET trace_sample_rate = 1.0 to "
                       "sample every tuple)")
            return
        by_trace = {}
        for trace_id, span_id, parent_id, name, duration in rows:
            by_trace.setdefault(trace_id, []).append(
                (span_id, parent_id, name, duration))
        for trace_id in sorted(by_trace)[-limit:]:
            self.write(f"-- trace {trace_id}")
            spans = by_trace[trace_id]
            depth = {}
            for span_id, parent_id, name, duration in spans:
                depth[span_id] = depth.get(parent_id, -1) + 1
                indent = "  " * depth[span_id]
                self.write(f"  {indent}{name}  ({duration:.3f} ms)")

    def _dead_letters(self, limit: int) -> None:
        if self.db.supervisor is None:
            self.write("supervision is off; SET supervision = on")
            return
        letters = self.db.supervisor.dead_letter_rows()[-limit:]
        if not letters:
            self.write("(no dead letters)")
            return
        for seq, source, kind, reason, rowcount, _payload, _open, close \
                in letters:
            suffix = f" @{close:g}" if close is not None else ""
            self.write(f"  #{seq} [{kind}] {source}{suffix}: {reason} "
                       f"({rowcount} row{'' if rowcount == 1 else 's'})")

    def _statement(self, sql: str) -> None:
        started = time.perf_counter()
        io_before = self.db.io_snapshot()
        try:
            result = self.db.execute(sql)
        except TruvisoError as exc:
            self.write(f"ERROR: {exc}")
            self.errors += 1
            return
        elapsed = time.perf_counter() - started
        if isinstance(result, Subscription):
            self._sub_counter += 1
            sub_name = f"sub{self._sub_counter}"
            self.subscriptions[sub_name] = result
            self.write(f"continuous query running as {sub_name!r} "
                       f"({', '.join(result.columns)}); use \\poll")
        elif result.columns:
            self.write(result.pretty())
            self.write(f"({len(result.rows)} row"
                       f"{'' if len(result.rows) == 1 else 's'})")
        else:
            self.write(f"OK (rowcount={result.rowcount})")
        if self.timing:
            delta = self.db.io_snapshot() - io_before
            sim = self.db.disk.elapsed_seconds(delta)
            self.write(f"Time: {elapsed * 1000:.2f} ms wall, "
                       f"{sim * 1000:.2f} ms simulated disk "
                       f"(r={delta.pages_read} w={delta.pages_written})")

    # -- main loop -----------------------------------------------------------------

    def run(self, lines) -> None:
        """Drive the shell from an iterable of raw input lines."""
        buffer = []
        for raw in lines:
            line = raw.rstrip("\n")
            stripped = line.strip()
            if not buffer and stripped.startswith("\\"):
                if not self.handle_line(stripped):
                    return
                continue
            buffer.append(line)
            if stripped.endswith(";"):
                statement = "\n".join(buffer).strip().rstrip(";")
                buffer = []
                if statement and not self.handle_line(statement):
                    return
        leftover = "\n".join(buffer).strip().rstrip(";")
        if leftover:
            self.handle_line(leftover)


class RemoteShell(Shell):
    """The same shell, speaking to a ``repro-server`` over a socket.

    Statements go through :class:`repro.client.Connection`; continuous
    queries become remote subscriptions polled with ``\\poll``.
    Engine-introspection commands that need in-process objects
    (``\\supervisor``, ``\\deadletters``) work here too — they are
    plain queries over system views, which travel fine.
    """

    def __init__(self, connection, out=None):
        # deliberately no super().__init__: there is no embedded Database
        self.conn = connection
        self.db = None
        self.out = out if out is not None else sys.stdout
        self.subscriptions = {}
        self._sub_counter = 0
        self.timing = False
        self.errors = 0

    def _command(self, text: str) -> bool:
        parts = text.split()
        command, args = parts[0], parts[1:]
        if command in ("\\q", "\\quit"):
            return False
        if command == "\\poll":
            self._poll(args[0] if args else None)
        elif command == "\\advance":
            if not args:
                self.write("usage: \\advance <event-time-seconds>")
            else:
                self.conn.advance(float(args[0]))
                self.write(f"advanced all streams to t={args[0]}")
                self._poll(None)
        elif command == "\\flush":
            self.conn.flush()
            self.write("flushed all streams")
            self._poll(None)
        elif command == "\\d":
            self._describe()
        elif command == "\\replication":
            self._replication()
        elif command == "\\storage":
            self._storage()
        elif command == "\\watermarks":
            self._watermarks()
        elif command == "\\partitions":
            self._partitions()
        elif command == "\\tenants":
            self._tenants()
        elif command == "\\stats":
            self._stats(args[0] if args else None)
        elif command == "\\trace":
            self._trace(int(args[0]) if args else 5)
        elif command in ("\\h", "\\help", "\\?"):
            self.write(__doc__.strip())
        else:
            self.write(f"command {command} is not available over a "
                       "connection; try \\help")
        return True

    def _describe(self) -> None:
        from repro.errors import RemoteError
        rows = []
        try:
            for name, kind, *_rest in self.conn.query(
                    "SELECT name, kind FROM repro_streams").rows:
                rows.append(f"  {name:<28} {kind} stream")
            for (name, *_rest) in self.conn.query(
                    "SELECT name FROM repro_tables").rows:
                rows.append(f"  {name:<28} table")
            for (name, *_rest) in self.conn.query(
                    "SELECT name FROM repro_cqs").rows:
                rows.append(f"  {name:<28} cq")
        except RemoteError as exc:
            self.write(f"ERROR: {exc}")
            return
        self.write("\n".join(sorted(rows)) if rows else "(empty catalog)")

    def _poll(self, name) -> None:
        targets = ([(name, self.subscriptions[name])]
                   if name else sorted(self.subscriptions.items()))
        if name and name not in self.subscriptions:
            self.write(f"no subscription named {name!r}")
            return
        for sub_name, sub in targets:
            for window in sub.poll(timeout=0.2):
                kind = getattr(window, "kind", "window")
                self.write(f"-- {sub_name}: {kind} "
                           f"[{window.open_time:g}, {window.close_time:g})")
                result = ResultSet(sub.columns, window.rows)
                self.write(result.pretty())

    def _statement(self, sql: str) -> None:
        from repro.client import RemoteSubscription
        from repro.errors import NetworkError
        started = time.perf_counter()
        try:
            result = self.conn.execute(sql)
        except (TruvisoError, NetworkError) as exc:
            self.write(f"ERROR: {exc}")
            self.errors += 1
            return
        elapsed = time.perf_counter() - started
        if isinstance(result, RemoteSubscription):
            self._sub_counter += 1
            sub_name = f"sub{self._sub_counter}"
            self.subscriptions[sub_name] = result
            self.write(f"continuous query running as {sub_name!r} "
                       f"({', '.join(result.columns)}); use \\poll")
        elif result.columns:
            self.write(result.pretty())
            self.write(f"({len(result.rows)} row"
                       f"{'' if len(result.rows) == 1 else 's'})")
        else:
            self.write(f"OK (rowcount={result.rowcount})")
        if self.timing:
            self.write(f"Time: {elapsed * 1000:.2f} ms wall (remote)")


def _build_shell(args, out=None):
    if args.connect:
        from repro.client import connect
        host, _, port = args.connect.rpartition(":")
        if not port.isdigit():
            raise SystemExit(
                f"--connect wants HOST:PORT, got {args.connect!r}")
        return RemoteShell(connect(host or "127.0.0.1", int(port)), out=out)
    return Shell(out=out)


def _run_one_shot(shell, chunks) -> int:
    """-c/--execute: run statements, print results, report success."""
    for chunk in chunks:
        for statement in chunk.split(";"):
            statement = statement.strip()
            if statement and not shell.handle_line(statement):
                break
    return 1 if shell.errors else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="TruSQL shell (embedded or remote)")
    parser.add_argument("-c", "--execute", action="append", metavar="STMT",
                        help="run this ;-separated statement list and "
                             "exit (nonzero on any error)")
    parser.add_argument("--connect", metavar="HOST:PORT",
                        help="drive a repro-server instead of an "
                             "embedded database")
    parser.add_argument("--standby-of", metavar="HOST:PORT",
                        help="start a warm standby server of that "
                             "primary instead of a shell")
    parser.add_argument("--port", type=int, default=5434,
                        help="listen port for --standby-of")
    parser.add_argument("--data-dir", default=None,
                        help="WAL directory for --standby-of")
    args = parser.parse_args(argv)
    if args.standby_of:
        from repro.server.server import main as server_main
        server_argv = ["--port", str(args.port),
                       "--standby-of", args.standby_of]
        if args.data_dir:
            server_argv += ["--data-dir", args.data_dir]
        return server_main(server_argv)
    shell = _build_shell(args)
    try:
        if args.execute:
            return _run_one_shot(shell, args.execute)
        return _repl(shell)
    finally:
        if isinstance(shell, RemoteShell):
            shell.conn.close()


def _repl(shell) -> int:
    interactive = sys.stdin.isatty()
    if interactive:
        print("repro — Continuous Analytics shell; \\help for commands")
        try:
            while True:
                try:
                    line = input(PROMPT)
                except EOFError:
                    break
                buffer = [line]
                while not line.strip().startswith("\\") \
                        and not line.strip().endswith(";") \
                        and line.strip():
                    line = input(CONTINUE_PROMPT)
                    buffer.append(line)
                text = "\n".join(buffer).strip().rstrip(";")
                if not shell.handle_line(text):
                    break
        except KeyboardInterrupt:
            print()
    else:
        try:
            shell.run(sys.stdin)
        except BrokenPipeError:
            # downstream (e.g. `| head`) closed the pipe: exit quietly
            try:
                sys.stdout.close()
            except Exception:
                pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
