"""Crash-consistent boot: rebuild a whole engine from its WAL.

``Database.recover_from_wal`` (PR 0) rebuilt *tables only*.  This module
rebuilds everything a server needs to come back from ``kill -9`` without
manual DDL replay: tables and their rows, base streams and their
retained tails, views and indexes, then — last, so no window fires
against a half-built world — derived streams and channels, with each
CQ's in-flight window realigned to its active table (the paper's
preferred recovery strategy) or its latest checkpoint.

The same phases serve standby promotion: a standby applies everything
*except* the streaming pipeline while it follows the primary, then runs
:func:`apply_streaming_ddl` + :func:`recover_cqs` at promotion time.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.catalog import catalog as cat
from repro.catalog.schema import Column, Schema
from repro.core.database import Database
from repro.core.dump import _type_from_sql_name
from repro.storage import wal as walrec
from repro.streaming.recovery import (
    CheckpointManager,
    recover_from_active_table,
)
from repro.streaming.windows import TimeWindowOperator

#: the legacy single-file WAL name inside a ``--data-dir`` (pre-segment
#: layouts are migrated into the segmented directory on first open)
WAL_FILENAME = "wal.jsonl"
#: the segmented WAL directory inside a ``--data-dir``
WAL_DIRNAME = "wal"
#: where compaction parks sealed segments (still replayed at boot)
WAL_ARCHIVE_DIRNAME = "wal_archive"


def _data_dir_wal_options(data_dir: str, options: dict) -> str:
    """Resolve a data dir to the segmented-WAL layout (migrating a
    legacy single-file ``wal.jsonl`` into segment 1) and default the
    segment/archive options.  Returns the WAL directory path."""
    from repro.storage.segments import DEFAULT_SEGMENT_BYTES, segment_name
    os.makedirs(data_dir, exist_ok=True)
    wal_dir = os.path.join(data_dir, WAL_DIRNAME)
    legacy = os.path.join(data_dir, WAL_FILENAME)
    if os.path.exists(legacy) and not os.path.isdir(wal_dir):
        os.makedirs(wal_dir, exist_ok=True)
        os.replace(legacy, os.path.join(wal_dir, segment_name(1)))
    if options.get("wal_segment_bytes") is None:
        options["wal_segment_bytes"] = DEFAULT_SEGMENT_BYTES
    if options.get("wal_archive_dir") is None:
        options["wal_archive_dir"] = os.path.join(
            data_dir, WAL_ARCHIVE_DIRNAME)
    return wal_dir


def open_database(data_dir: Optional[str] = None,
                  wal_path: Optional[str] = None, **options) -> Database:
    """Open (or create) a database on a data directory.

    When the directory already holds a WAL, the returned database has
    its full runtime state recovered: all objects re-registered, table
    rows reloaded, stream tails rebuilt, and every derived CQ resumed at
    the correct window boundary.  Recovery statistics are left on the
    database as ``db.recovery_stats``.

    A data dir uses the segmented WAL layout (``wal/`` + a
    ``wal_archive/`` sibling); boot recovery replays archive + live
    segments, then archived records are released from memory so a
    long-compacted history costs RAM only during boot.  Passing
    ``wal_path`` directly keeps the legacy single-file mode.
    """
    if data_dir is not None:
        wal_path = _data_dir_wal_options(data_dir, options)
    db = Database(wal_path=wal_path, **options)
    if db.storage.wal.records:
        db.recovery_stats = recover_runtime(db)
    else:
        db.recovery_stats = None
    db.storage.wal.release_archived()
    return db


def open_standby_database(data_dir: Optional[str] = None,
                          wal_path: Optional[str] = None, **options):
    """Open a database for a *standby*: file-backed WAL, but nothing is
    ever appended locally — the log must remain a verbatim prefix of the
    primary's, so shipped records slot in at their original LSNs.

    A restarted standby recovers tables, streams, and catalog objects
    but defers the streaming pipeline.  Returns ``(db, deferred)`` where
    ``deferred`` is the held streaming DDL for the promotion path.
    """
    if data_dir is not None:
        wal_path = _data_dir_wal_options(data_dir, options)
    db = Database(wal_path=wal_path, replication_logging=False, **options)
    deferred: List[dict] = []
    if db.storage.wal.records:
        db.recovery_stats = recover_runtime(db, promote=False)
        deferred = db.recovery_stats["deferred"]
    else:
        db.recovery_stats = None
    db.storage.wal.release_archived()
    return db, deferred


def recover_runtime(db: Database, promote: bool = True,
                    faults=None) -> dict:
    """Rebuild catalog + runtime state from ``db``'s preloaded WAL.

    With ``promote=False`` (a restarted standby) the streaming pipeline
    DDL is *not* applied; the deferred specs are returned in the stats
    dict under ``"deferred"`` for the standby controller to hold until
    promotion.
    """
    wal = db.storage.wal
    stats = {"tables": 0, "rows": 0, "streams": 0,
             "stream_tuples": 0, "deferred": [], "cqs": []}
    deferred: List[dict] = []
    db._recovering = True
    try:
        records = list(wal.durable_records())
        for record in records:
            if record.kind in (walrec.DDL, walrec.DDL_OBJ):
                apply_ddl_record(db, record, deferred)
        # durable table rows — re-inserted with the WAL detached, so
        # recovery does not re-log what it just read from the log
        quiesce_wal(db)
        try:
            for name, rows in wal.replay().items():
                if db.catalog.relation_kind(name) == cat.TABLE:
                    db.insert_table(name, rows)
                    stats["rows"] += len(rows)
        finally:
            restore_wal(db)
        # idempotent-ingest batch markers: a batch's rows and its
        # stream_dedup marker become durable in one flush, so a row
        # tagged with a (sender, seq) rid whose marker never made it is
        # half of a torn batch — discard it; the client's retry of that
        # whole batch will be accepted fresh
        durable_batches = set()
        for record in records:
            if record.kind == walrec.STREAM_DEDUP \
                    and record.rid is not None:
                durable_batches.add(
                    (record.table, tuple(record.rid)))
        # stream tails: watermark + retained tuples, no consumer fan-out
        for record in records:
            if record.kind == walrec.STREAM_INSERT:
                if record.rid is not None and \
                        (record.table, tuple(record.rid)) \
                        not in durable_batches:
                    stats["torn_batch_rows"] = \
                        stats.get("torn_batch_rows", 0) + 1
                    continue
                if db.catalog.relation_kind(record.table) == cat.STREAM:
                    db.catalog.get_relation(record.table).restore_point(
                        record.payload, record.after)
                    stats["stream_tuples"] += 1
            elif record.kind == walrec.STREAM_ADVANCE:
                if db.catalog.relation_kind(record.table) == cat.STREAM:
                    db.catalog.get_relation(record.table).restore_point(
                        record.payload)
        # rebuild the dedup index from durable markers so replays sent
        # to the recovered (or promoted) server are still recognised
        stats["dedup_markers"] = db.admission.dedup.restore_from_wal(wal)
        stats["tables"] = len(list(db.catalog.relations(cat.TABLE)))
        stats["streams"] = len(list(db.catalog.relations(cat.STREAM)))
        if promote:
            apply_streaming_ddl(db, deferred)
            stats["cqs"] = recover_cqs(db, faults=faults)
        else:
            stats["deferred"] = deferred
    finally:
        db._recovering = False
    return stats


# ---------------------------------------------------------------------------
# DDL application (idempotent: creates skip existing objects)
# ---------------------------------------------------------------------------


def _build_schema(specs) -> Schema:
    return Schema([
        Column(spec["name"], _type_from_sql_name(spec["type"]),
               not_null=spec["not_null"], primary_key=spec["primary_key"],
               cqtime=spec.get("cqtime"))
        for spec in specs
    ])


def _has_channel(db: Database, name: str) -> bool:
    return any(n == name for n, _c in db.catalog.channels())


def _has_index(db: Database, name: str) -> bool:
    return any(n == name for n, _i in db.catalog.indexes())


def apply_ddl_record(db: Database, record, deferred: List[dict]) -> None:
    """Apply one ``ddl``/``ddl_obj`` record to the catalog.

    Streaming pipeline objects (derived streams, channels) are pushed
    onto ``deferred`` instead of created: a standby must not run CQs
    until promoted, and boot recovery creates them only once the stream
    tails are back in place.
    """
    if record.kind == walrec.DDL:
        if record.payload is not None \
                and not db.catalog.has_relation(record.table):
            db._register_table(record.table, _build_schema(record.payload))
        return
    payload = record.payload
    if not isinstance(payload, dict):
        return
    op = payload.get("op")
    kind = payload.get("kind")
    name = payload.get("name")
    if op == "drop":
        deferred[:] = [d for d in deferred if d.get("name") != name]
        if kind == "channel" and _has_channel(db, name):
            db.runtime.drop_channel(name)
        elif kind == "stream" and db.catalog.has_relation(name):
            db.runtime.drop_stream(name)
        elif kind == "view" and db.catalog.has_relation(name):
            db.catalog.drop_relation(name, cat.VIEW)
        elif kind == "index" and _has_index(db, name):
            db.execute(f"DROP INDEX {name}")
        return
    if kind == "stream":
        if not db.catalog.has_relation(name):
            stream = db.runtime.create_base_stream(
                name, _build_schema(payload["columns"]),
                retention=payload.get("retention"),
                slack=payload.get("slack") or 0.0,
                watermark_bound=payload.get("watermark_bound"),
                partition_by=payload.get("partition_by"))
            policy = payload.get("disorder_policy")
            if policy:
                stream.disorder_policy = policy
    elif kind == "view":
        if not db.catalog.has_relation(name):
            db.execute(f"CREATE VIEW {name} AS {payload['query']}")
    elif kind == "index":
        if not _has_index(db, name):
            unique = "UNIQUE " if payload.get("unique") else ""
            columns = ", ".join(payload["columns"])
            db.execute(f"CREATE {unique}INDEX {name} "
                       f"ON {payload['table']} ({columns})")
    elif kind in ("derived_stream", "channel"):
        deferred.append(payload)


def apply_streaming_ddl(db: Database, deferred: List[dict]) -> None:
    """Create the deferred derived streams and channels, in log order."""
    for payload in deferred:
        kind, name = payload.get("kind"), payload.get("name")
        if kind == "derived_stream":
            if not db.catalog.has_relation(name):
                db.execute(f"CREATE STREAM {name} AS {payload['query']}")
        elif kind == "channel":
            if not _has_channel(db, name):
                db.execute(
                    f"CREATE CHANNEL {name} FROM {payload['source']} "
                    f"INTO {payload['target']} {payload['mode'].upper()}")


# ---------------------------------------------------------------------------
# CQ runtime-state recovery
# ---------------------------------------------------------------------------


def recover_cqs(db: Database, faults=None) -> List[tuple]:
    """Rebuild in-flight window state for every derived-stream CQ.

    Strategy per CQ, in order of preference (the supervisor's order):
    latest ``cq_checkpoint`` record, then active-table realignment via
    the CQ's archiving channel, then a cold start.  A failure (including
    the ``server.boot_recovery`` crashpoint) quarantines the CQ as a
    dead letter when supervision is on — one unrecoverable CQ must not
    keep the server down — and falls back to a cold start.

    Returns ``[(cq_name, strategy), ...]``; failed CQs report
    ``"cold:<error>"``.
    """
    if faults is None:
        faults = db.faults
    from repro.streaming.supervisor import _guess_stime_column
    channels_by_source = {}
    for _name, channel in db.catalog.channels():
        channels_by_source[channel.source.name] = channel
    outcomes = []
    wal = db.storage.wal
    for derived in list(db.runtime._derived_order):
        cq = derived.cq
        op = getattr(cq, "_window_op", None)
        if not isinstance(op, TimeWindowOperator):
            outcomes.append((cq.name, "cold"))
            continue
        try:
            if faults is not None:
                faults.check("server.boot_recovery", cq.name)
            if wal.latest_checkpoint(cq.name) is not None:
                CheckpointManager.recover(cq, wal)
                outcomes.append((cq.name, "checkpoint"))
                continue
            channel = channels_by_source.get(derived.name)
            stime = (_guess_stime_column(channel.table)
                     if channel is not None else None)
            if channel is not None and stime is not None:
                recover_from_active_table(
                    cq, channel.table, db.txn_manager, stime)
                outcomes.append((cq.name, "active-table"))
                continue
            outcomes.append((cq.name, "cold"))
        except Exception as exc:
            outcomes.append((cq.name, f"cold:{exc}"))
            if db.supervisor is not None:
                db.supervisor.quarantine(
                    cq.name, "recovery",
                    f"{type(exc).__name__}: {exc}", [])
    return outcomes


# ---------------------------------------------------------------------------
# WAL quiescing (recovery and standby apply must not re-log)
# ---------------------------------------------------------------------------


def quiesce_wal(db: Database) -> None:
    """Detach the WAL from every write path.

    Used while re-inserting replayed rows (boot) and while applying
    shipped records (standby): the records describing these writes are
    already in the log — side effects must not log them again.
    """
    db.txn_manager.wal = None
    for _name, table in db.catalog.relations(cat.TABLE):
        table._wal = None


def restore_wal(db: Database) -> None:
    """Reattach the WAL after :func:`quiesce_wal`."""
    db.txn_manager.wal = db.storage.wal
    for _name, table in db.catalog.relations(cat.TABLE):
        table._wal = db.storage.wal


# ---------------------------------------------------------------------------
# derived-window replay (resumable subscriptions)
# ---------------------------------------------------------------------------


def replay_derived_windows(db: Database, derived, since: float):
    """Windows of ``derived`` that closed strictly after ``since``.

    Prefers the in-memory window tail; falls back to reconstructing
    windows from the CQ's active table when an APPEND channel archives
    this stream — the fallback is what makes a re-subscription after a
    failover or restart gap-free, because the archive (shipped through
    the WAL) survives where the in-memory tail does not.  Empty windows
    on the grid are reconstructed as empty row lists.
    """
    if derived.retention is not None and derived._window_tail \
            and derived._window_tail[0][1] <= since:
        return derived.replay_windows(since)
    channel = None
    for _name, candidate in db.catalog.channels():
        if candidate.source is derived and candidate.mode == "append":
            channel = candidate
            break
    cq = derived.cq
    op = getattr(cq, "_window_op", None)
    if channel is None or not isinstance(op, TimeWindowOperator):
        if derived.retention is not None:
            return derived.replay_windows(since)
        return []
    from repro.streaming.supervisor import _guess_stime_column
    stime = _guess_stime_column(channel.table)
    if stime is None:
        return []
    position = channel.table.schema.index_of(stime)
    snapshot = db.txn_manager.take_snapshot()
    by_close = {}
    last_close = None
    for _rid, values in channel.table.scan(snapshot, db.txn_manager):
        close = values[position]
        if close is None or close <= since:
            continue
        by_close.setdefault(close, []).append(values)
        if last_close is None or close > last_close:
            last_close = close
    if last_close is None:
        return []
    # walk the window grid backwards from the newest archived close so
    # empty windows (archived as nothing) are still replayed as empty
    closes = []
    close = last_close
    while close > since + 1e-9:
        closes.append(close)
        close -= op.advance
    out = []
    for close in sorted(closes):
        out.append((close - op.visible, close, by_close.get(close, [])))
    return out
