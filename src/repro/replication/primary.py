"""Primary-side WAL shipping.

One :class:`ReplicationManager` per serving database.  Standbys attach
through the normal frame protocol (op ``replicate``); each attached
standby gets the backlog from its requested LSN, then every subsequent
``WriteAheadLog.append`` is forwarded as a ``wal`` push through the
standby's session buffer (the same slow-client machinery ordinary
subscriptions use — a standby that cannot keep up sheds, detects the
LSN gap, and re-requests from where it left off).

All methods run on the engine thread: the WAL append hook fires there,
and the server routes ``replicate``/``replicate_ack`` ops through the
single-writer executor.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.errors import ReplicationGapError
from repro.server import protocol
from repro.storage.wal import record_to_wire

#: records per backlog frame (well under the 32 MiB frame cap)
BACKLOG_CHUNK = 512


class StandbyPeer:
    """Book-keeping for one attached standby."""

    def __init__(self, session, entry, from_lsn: int):
        self.session = session
        self.entry = entry           # SubscriptionEntry carrying the sub id
        self.from_lsn = from_lsn
        self.sent_lsn = from_lsn - 1
        self.acked_lsn = 0
        self.attached_at = time.monotonic()
        self.ship_drops = 0          # batches dropped (replication.ship)
        self.last_error: Optional[str] = None

    @property
    def state(self) -> str:
        return "streaming" if not self.entry.broken else "detached"


class ReplicationManager:
    """Ships WAL records to attached standbys as they are appended."""

    def __init__(self, db, faults=None):
        self.db = db
        self.faults = faults if faults is not None else db.faults
        self.peers: Dict[int, StandbyPeer] = {}  # sub_id -> peer
        db.enable_replication_logging()
        db.storage.wal.on_append = self._on_append
        db.replication_registry = self.status_rows
        self.archive_serves = 0      # attaches satisfied from the archive
        lifecycle = getattr(db, "wal_lifecycle", None)
        if lifecycle is not None:
            # compaction must retain everything an attached standby has
            # not yet acknowledged
            lifecycle.retain_hooks.append(self._retain_floor)
        obs = getattr(db, "obs", None)
        if obs is not None:
            obs.bind_replication_primary(self)

    # -- attach / detach ---------------------------------------------------

    def attach(self, session, entry, from_lsn: int) -> StandbyPeer:
        """Register a standby and queue its backlog.  Engine thread.

        A standby that fell below the compacted range is caught up from
        the archive: the archived stretch is shipped first (as wire
        dicts read straight off the archived segments), then the
        in-memory tail from where the archive hands over.
        """
        peer = StandbyPeer(session, entry, from_lsn)
        self.peers[entry.sub_id] = peer
        wal = self.db.storage.wal
        try:
            backlog = wal.records_from(from_lsn)
        except ReplicationGapError as gap:
            archived = wal.archived_wire_records(
                gap.missing_from, gap.missing_to)
            self.archive_serves += 1
            for start in range(0, len(archived), BACKLOG_CHUNK):
                self._send_wire(peer, archived[start:start + BACKLOG_CHUNK])
            backlog = wal.records_from(gap.missing_to + 1)
        for start in range(0, len(backlog), BACKLOG_CHUNK):
            chunk = backlog[start:start + BACKLOG_CHUNK]
            self._send(peer, chunk)
        return peer

    def _retain_floor(self) -> Optional[int]:
        """Lowest LSN compaction must keep live for attached standbys."""
        floors = [peer.acked_lsn + 1 for peer in self.peers.values()
                  if not peer.entry.broken]
        return min(floors) if floors else None

    def detach(self, sub_id: int) -> None:
        self.peers.pop(sub_id, None)

    def ack(self, sub_id: int, lsn: int) -> None:
        peer = self.peers.get(sub_id)
        if peer is not None and lsn > peer.acked_lsn:
            peer.acked_lsn = lsn

    # -- shipping ----------------------------------------------------------

    def _on_append(self, record) -> None:
        if not self.peers:
            return
        for peer in list(self.peers.values()):
            if peer.entry.broken:
                self.peers.pop(peer.entry.sub_id, None)
                continue
            self._send(peer, [record])

    def _send_wire(self, peer: StandbyPeer, wire_records: List[dict]) -> None:
        """Ship records already in wire form (archived segments)."""
        if not wire_records:
            return
        frame = wal_push(peer.entry.sub_id, wire_records,
                         head=self.db.storage.wal.head_lsn)
        peer.session.enqueue_push(peer.entry, frame)
        peer.sent_lsn = max(peer.sent_lsn, wire_records[-1]["lsn"])

    def _send(self, peer: StandbyPeer, records: List) -> None:
        if not records:
            return
        if self.faults is not None and self.faults.armed \
                and self.faults.should("replication.ship"):
            # the batch is "lost on the wire": the standby will notice
            # the LSN gap and re-request from its applied position
            peer.ship_drops += 1
            peer.last_error = (
                f"shipping dropped {len(records)} record(s) at "
                f"lsn {records[0].lsn} (replication.ship)")
            return
        frame = wal_push(peer.entry.sub_id,
                         [record_to_wire(r) for r in records],
                         head=self.db.storage.wal.head_lsn)
        peer.session.enqueue_push(peer.entry, frame)
        peer.sent_lsn = max(peer.sent_lsn, records[-1].lsn)

    # -- introspection -----------------------------------------------------

    def status_rows(self) -> List[tuple]:
        head = self.db.storage.wal.head_lsn
        rows = []
        for peer in self.peers.values():
            rows.append((
                "primary", peer.session.peer, peer.state,
                peer.sent_lsn, peer.acked_lsn, peer.acked_lsn,
                max(0, head - peer.acked_lsn), peer.last_error,
            ))
        if not rows:
            rows.append(("primary", None, "no-standby",
                         head, None, None, None, None))
        return rows


def wal_push(sub_id: int, wire_records: List[dict], head: int) -> dict:
    """The ``wal`` push frame: a batch of shipped records."""
    return {"push": "wal", "sub": sub_id,
            "records": wire_records, "head": head}


# re-exported for symmetry with the other protocol constructors
protocol.wal_push = wal_push
