"""High availability: WAL shipping, warm standby, crash-consistent boot.

The paper's Section 4 argues a stream-relational system must recover
*runtime* state (in-flight windows), not just durable state.  This
package makes that true across process boundaries:

- :mod:`repro.replication.bootstrap` — rebuild a whole engine (catalog,
  streams, tables, CQ windows) from a file-backed WAL, used both by
  crash-consistent server boot and by standby promotion;
- :mod:`repro.replication.primary` — primary-side WAL shipping to any
  number of attached standbys, resumable from an LSN;
- :mod:`repro.replication.standby` — the standby controller: pulls the
  primary's WAL over the frame protocol, applies it continuously, and
  promotes (on request or on missed heartbeats) via the active-table
  recovery path.
"""

from repro.replication.bootstrap import (  # noqa: F401
    open_database,
    recover_runtime,
)
from repro.replication.primary import ReplicationManager  # noqa: F401
from repro.replication.standby import StandbyController  # noqa: F401
