"""The warm standby: follow a primary's WAL, apply it, promote on loss.

Two pieces:

- :class:`WalApplier` — engine-thread state machine that takes shipped
  records, appends them to the standby's own WAL verbatim (same LSNs, so
  the standby log is a byte-prefix of the primary's), and applies their
  effects: table rows through real MVCC transactions, stream tuples and
  watermarks into retained tails, DDL into the catalog.  Streaming
  pipeline DDL (derived streams, channels) is *held* until promotion —
  a standby must not run CQs of its own.

- :class:`StandbyController` — owns the follower thread: connects to
  the primary over the ordinary frame protocol, issues ``replicate``,
  pumps ``wal`` pushes into the applier, acks applied LSNs, heartbeats
  when idle, reconnects with backoff, and promotes either on request
  or after ``miss_limit`` consecutive failed contact attempts.

Poison records (bad CRC on the wire, or the ``replication.apply``
crashpoint) are quarantined through the supervisor as dead letters,
re-stamped, and retained in the log so the standby neither dies nor
loops re-requesting the same LSN forever — bounded divergence, loudly
reported, instead of an outage.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro import client as client_mod
from repro.catalog import catalog as cat
from repro.errors import ReplicationGapError
from repro.storage import wal as walrec
from repro.storage.wal import record_from_wire
from repro.replication.bootstrap import (
    apply_ddl_record,
    apply_streaming_ddl,
    quiesce_wal,
    recover_cqs,
    restore_wal,
)


class WalGap(Exception):
    """Shipped records skipped an LSN; carries the resume point."""

    def __init__(self, resume_lsn: int):
        super().__init__(f"WAL gap: resume from lsn {resume_lsn}")
        self.resume_lsn = resume_lsn


class WalApplier:
    """Applies shipped WAL records to the standby engine.

    Every method runs on the engine thread (the controller crosses over
    through the server's single-writer executor).
    """

    def __init__(self, db, faults=None):
        self.db = db
        self.faults = faults if faults is not None else db.faults
        self.deferred: List[dict] = []   # streaming DDL held for promotion
        self._pending: Dict[int, list] = {}  # txid -> buffered data records
        self.applied_records = 0
        self.poisoned = 0
        self.last_error: Optional[str] = None

    @property
    def applied_lsn(self) -> int:
        return self.db.storage.wal.head_lsn

    def apply_batches(self, frames: List[dict]) -> int:
        """Apply ``wal`` push frames in order; returns records applied.

        Raises :class:`WalGap` when the shipment skips past the next
        expected LSN (a batch was lost — e.g. the ``replication.ship``
        crashpoint, or a shed under backpressure); the controller
        re-requests from ``gap.resume_lsn``.
        """
        wal = self.db.storage.wal
        applied = 0
        try:
            for frame in frames:
                for fields in frame.get("records", ()):
                    record = record_from_wire(fields)
                    expected = wal.head_lsn + 1
                    if record.lsn < expected:
                        continue        # duplicate (re-ship overlap)
                    if record.lsn > expected:
                        raise WalGap(expected)
                    self._apply_one(record)
                    applied += 1
        finally:
            if applied:
                wal.flush()             # standby durability point
        return applied

    # -- one record --------------------------------------------------------

    def _apply_one(self, record) -> None:
        wal = self.db.storage.wal
        poison = None
        if not record.is_valid():
            poison = (f"checksum mismatch (stored {record.crc}, "
                      f"content {record.content_crc()})")
        elif self.faults is not None and self.faults.armed:
            exc = self.faults.poll("replication.apply",
                                   f"lsn {record.lsn}")
            if exc is not None:
                poison = str(exc)
        if poison is not None:
            self._quarantine(record, poison)
            # re-stamp so the retained log stays loadable on restart;
            # the record's effect is intentionally NOT applied
            record.crc = record.content_crc()
            wal.append_replicated(record)
            return
        wal.append_replicated(record)
        self.db._recovering = True      # suppress DDL re-logging
        try:
            self._apply_effect(record)
            self.applied_records += 1
        except Exception as exc:        # never kill the apply loop
            self._quarantine(record, f"{type(exc).__name__}: {exc}")
        finally:
            self.db._recovering = False

    def _quarantine(self, record, reason: str) -> None:
        self.poisoned += 1
        self.last_error = f"lsn {record.lsn}: {reason}"
        supervisor = self.db.supervisor
        if supervisor is not None:
            supervisor.quarantine(
                f"replication:{record.table or record.kind}",
                "replication_apply", self.last_error,
                [record.after] if record.after is not None else [])

    def _apply_effect(self, record) -> None:
        db = self.db
        kind = record.kind
        if kind in (walrec.DDL, walrec.DDL_OBJ):
            apply_ddl_record(db, record, self.deferred)
        elif kind == walrec.STREAM_INSERT:
            if db.catalog.relation_kind(record.table) == cat.STREAM:
                db.catalog.get_relation(record.table).restore_point(
                    record.payload, record.after)
        elif kind == walrec.STREAM_ADVANCE:
            if db.catalog.relation_kind(record.table) == cat.STREAM:
                db.catalog.get_relation(record.table).restore_point(
                    record.payload)
        elif kind == walrec.STREAM_DEDUP:
            # keep the standby's dedup index warm: after promotion a
            # client replaying an idempotent batch must still be told
            # "duplicate", not have it applied twice
            if record.rid is not None:
                db.admission.dedup.record(
                    record.table, str(record.rid[0]), int(record.rid[1]))
        elif kind in (walrec.INSERT, walrec.DELETE, walrec.UPDATE):
            self._pending.setdefault(record.txid, []).append(record)
        elif kind == walrec.COMMIT:
            self._commit(record.txid)
        elif kind == walrec.ABORT:
            self._pending.pop(record.txid, None)
        # cq_checkpoint needs no live effect: it is now durable in the
        # standby's log, where promotion-time recovery will find it

    def _commit(self, txid: int) -> None:
        """Replay one primary transaction's data ops atomically, with
        the WAL detached — these ops are already in the log."""
        ops = self._pending.pop(txid, None)
        if not ops:
            return
        db = self.db
        quiesce_wal(db)
        try:
            txn = db.txn_manager.begin()
            try:
                for record in ops:
                    table = db.catalog.get_relation(record.table, cat.TABLE)
                    if record.kind == walrec.INSERT:
                        table.insert(txn, record.after)
                    elif record.kind == walrec.DELETE:
                        self._delete_matching(table, txn, record.before)
                    else:  # UPDATE (defensive: engine logs delete+insert)
                        self._delete_matching(table, txn, record.before)
                        table.insert(txn, record.after)
                txn.commit()
            except Exception:
                txn.abort()
                raise
        finally:
            restore_wal(db)

    def _delete_matching(self, table, txn, before) -> None:
        """Delete one visible row matching the primary's before-image.

        The primary's rids don't map onto the standby's heap, so the
        before-image is the join key; one arbitrary match suffices
        because duplicates are interchangeable under MVCC."""
        if before is None:
            return
        target = tuple(before)
        snapshot = self.db.txn_manager.take_snapshot()
        for rid, values in table.scan(snapshot, self.db.txn_manager,
                                      own_txid=txn.txid):
            if tuple(values) == target:
                version = table.heap.read(table._pool, rid)
                table.delete_version(txn, rid, version)
                return


class _WalSink:
    """Client-side push target for ``wal`` frames (quacks like a
    RemoteSubscription as far as Connection._dispatch cares)."""

    def __init__(self):
        self.batches = deque()
        self.closed = False
        self.close_reason = None

    def _on_push(self, frame: dict) -> None:
        kind = frame.get("push")
        if kind == "wal":
            self.batches.append(frame)
        elif kind == "sub_closed":
            self.closed = True
            self.close_reason = frame.get("reason")


class StandbyController:
    """Follows a primary; promotes on request or on missed heartbeats."""

    def __init__(self, server, primary_host: str, primary_port: int,
                 heartbeat_interval: float = 1.0, miss_limit: int = 3,
                 auto_promote: bool = True, connect_timeout: float = 2.0,
                 max_backoff: float = 5.0):
        self.server = server
        self.db = server.db
        self.primary = (primary_host, primary_port)
        self.heartbeat_interval = heartbeat_interval
        self.miss_limit = miss_limit
        self.auto_promote = auto_promote
        self.connect_timeout = connect_timeout
        self.max_backoff = max_backoff
        self.applier = WalApplier(self.db)
        self.state = "connecting"
        self.head_seen = 0              # primary's head LSN, last we heard
        self.misses = 0
        self.last_error: Optional[str] = None
        self.promotion_stats: Optional[dict] = None
        self._promoted = threading.Event()
        self._stop = threading.Event()
        self._rng = random.Random()
        self._thread = threading.Thread(
            target=self._run, name="repro-standby", daemon=True)
        self.db.replication_registry = self.status_rows
        obs = getattr(self.db, "obs", None)
        if obs is not None:
            obs.bind_replication_standby(self)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)

    @property
    def promoted(self) -> bool:
        return self._promoted.is_set()

    # -- follower loop -----------------------------------------------------

    def _run(self) -> None:
        backoff = 0.2
        while not self._stop.is_set() and not self._promoted.is_set():
            try:
                self._follow_once()
                backoff = 0.2           # left cleanly (stop/promote/gap)
            except Exception as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                self.misses += 1
                self.state = "reconnecting"
                if (self.misses >= self.miss_limit and self.auto_promote
                        and not self._stop.is_set()):
                    try:
                        self.server.executor.submit(
                            self.promote_on_engine,
                            f"primary unreachable "
                            f"({self.misses} consecutive failures; "
                            f"last: {self.last_error})").result(60.0)
                    except Exception as promote_exc:
                        self.last_error = (
                            f"promotion failed: {promote_exc}")
                        self.state = "failed"
                    return
                self._stop.wait(backoff * (1.0 + self._rng.random() * 0.25))
                backoff = min(backoff * 2, self.max_backoff)
        if self._stop.is_set() and not self._promoted.is_set():
            self.state = "stopped"

    def _follow_once(self) -> None:
        """One connected stint: attach, stream, apply, ack, heartbeat."""
        engine = self.server.executor
        conn = client_mod.Connection(
            self.primary[0], self.primary[1],
            timeout=max(self.heartbeat_interval * 2, self.connect_timeout),
            connect_timeout=self.connect_timeout)
        try:
            from_lsn = engine.submit(
                lambda: self.db.storage.wal.head_lsn).result(30.0) + 1
            try:
                response = conn._request("replicate", from_lsn=from_lsn)
            except ReplicationGapError as gap:
                # the primary compacted past its archive: this standby
                # cannot be caught up incrementally any more.  Surface
                # the exact missing range so the operator knows a
                # re-seed (restore from backup) is required.
                self.state = "gap"
                raise ReplicationGapError(
                    f"primary no longer retains lsns "
                    f"{gap.missing_from}..{gap.missing_to}; "
                    f"re-seed this standby from a backup",
                    missing_from=gap.missing_from,
                    missing_to=gap.missing_to) from None
            sub_id = response["sub"]
            self.head_seen = max(self.head_seen,
                                 response.get("head", 0) or 0)
            sink = _WalSink()
            conn._subs[sub_id] = sink
            for frame in conn._orphans.pop(sub_id, []):
                sink._on_push(frame)
            self.state = "streaming"
            self.misses = 0
            last_contact = time.monotonic()
            while not self._stop.is_set() and not self._promoted.is_set():
                conn._pump_until(lambda: sink.batches or sink.closed, 0.2)
                if sink.closed:
                    raise ConnectionError(
                        f"primary closed replication: {sink.close_reason}")
                if sink.batches:
                    frames = list(sink.batches)
                    sink.batches.clear()
                    for frame in frames:
                        self.head_seen = max(self.head_seen,
                                             frame.get("head", 0) or 0)
                    try:
                        engine.submit(self.applier.apply_batches,
                                      frames).result(60.0)
                    except WalGap as gap:
                        # lost batch: re-attach from the resume point
                        self.last_error = str(gap)
                        return
                    conn._request("replicate_ack", sub=sub_id,
                                  lsn=self.applier.applied_lsn)
                    self.misses = 0
                    last_contact = time.monotonic()
                elif (time.monotonic() - last_contact
                        >= self.heartbeat_interval):
                    conn.ping()         # raises when the primary is gone
                    self.misses = 0
                    last_contact = time.monotonic()
        finally:
            try:
                conn.close()
            except Exception:
                pass

    # -- promotion ---------------------------------------------------------

    def promote_on_engine(self, reason: str = "requested") -> dict:
        """Engine thread: become the primary.  Idempotent.

        Applies the held streaming DDL, then rebuilds every CQ's
        in-flight window from its active table / checkpoint — the same
        path crash-consistent boot uses — and flips the server role so
        it accepts writes (and future standbys of its own).
        """
        if self.promotion_stats is not None:
            return self.promotion_stats
        self._promoted.set()
        self.state = "promoting"
        db = self.db
        db._recovering = True
        try:
            apply_streaming_ddl(db, self.applier.deferred)
            cqs = recover_cqs(db)
        finally:
            db._recovering = False
        self.promotion_stats = {
            "reason": reason, "cqs": cqs,
            "applied_lsn": self.applier.applied_lsn,
            "poisoned": self.applier.poisoned,
        }
        self.state = "primary"
        become = getattr(self.server, "become_primary", None)
        if become is not None:
            become(reason)
        return self.promotion_stats

    # -- introspection -----------------------------------------------------

    def status_rows(self) -> List[tuple]:
        applied = self.applier.applied_lsn
        role = "primary" if self._promoted.is_set() else "standby"
        return [(
            role, f"{self.primary[0]}:{self.primary[1]}", self.state,
            self.head_seen, applied, applied,
            max(0, self.head_seen - applied),
            self.applier.last_error or self.last_error,
        )]
