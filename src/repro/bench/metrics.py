"""Measurement helpers: wall-clock + simulated-disk interval accounting."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.storage.disk import DiskStats


@dataclass
class Measurement:
    """One measured interval: wall time, simulated time, raw I/O counts."""

    label: str = ""
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)

    @property
    def pages_read(self) -> int:
        return self.io.pages_read

    @property
    def pages_written(self) -> int:
        return self.io.pages_written

    def __repr__(self):
        return (f"Measurement({self.label!r}, wall={self.wall_seconds:.4f}s, "
                f"sim={self.sim_seconds:.4f}s, r={self.io.pages_read}, "
                f"w={self.io.pages_written})")


@contextmanager
def measure(db, label: str = ""):
    """Context manager measuring one block against ``db``'s disk.

    >>> with measure(db, "report") as m:          # doctest: +SKIP
    ...     db.query("SELECT count(*) FROM t")
    >>> m.sim_seconds                              # doctest: +SKIP
    """
    out = Measurement(label)
    before = db.io_snapshot()
    started = time.perf_counter()
    try:
        yield out
    finally:
        out.wall_seconds = time.perf_counter() - started
        out.io = db.io_snapshot() - before
        out.sim_seconds = db.disk.elapsed_seconds(out.io)
