"""Benchmark harness utilities: measurement and table reporting."""

from repro.bench.metrics import Measurement, measure
from repro.bench.harness import format_table, print_table, write_report

__all__ = [
    "Measurement",
    "measure",
    "format_table",
    "print_table",
    "write_report",
]
