"""Rendering benchmark results the way the paper reports them:
fixed-width tables and series, plus a per-experiment report file that
EXPERIMENTS.md links to."""

from __future__ import annotations

import os
from typing import List, Optional

#: where bench runs drop their report files (relative to the repo root)
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results")


def format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: List[str], rows: List[list],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: List[str], rows: List[list],
                title: Optional[str] = None) -> str:
    text = format_table(headers, rows, title)
    print("\n" + text)
    return text


def write_report(experiment_id: str, text: str) -> str:
    """Persist a bench report under benchmarks/results/<id>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return path
