"""Declared SQL data types and coercion rules.

A :class:`DataType` instance validates and coerces Python values into the
canonical runtime representation for a column of that type.  Types are
value objects: equality is structural and instances are hashable so they
can key plan caches.
"""

from __future__ import annotations

from repro.errors import ConstraintError, TypeError_
from repro.types.temporal import parse_interval, parse_timestamp


class DataType:
    """Base class for SQL data types."""

    #: lower-case SQL name, set by subclasses
    name = "unknown"

    def coerce(self, value):
        """Coerce ``value`` to this type's runtime representation.

        ``None`` (SQL NULL) always passes through.  Raises
        :class:`repro.errors.TypeError_` when the value cannot be
        represented.
        """
        raise NotImplementedError

    def is_numeric(self) -> bool:
        return False

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self):
        return self.sql_name()

    def sql_name(self) -> str:
        """The SQL spelling of this type (e.g. ``varchar(50)``)."""
        return self.name


class BooleanType(DataType):
    """SQL BOOLEAN."""

    name = "boolean"

    _TRUE = {"t", "true", "yes", "on", "1"}
    _FALSE = {"f", "false", "no", "off", "0"}

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in self._TRUE:
                return True
            if lowered in self._FALSE:
                return False
        raise TypeError_(f"cannot coerce {value!r} to boolean")


class IntegerType(DataType):
    """SQL INTEGER / BIGINT / SMALLINT (Python ints are unbounded)."""

    name = "integer"

    def __init__(self, name: str = "integer"):
        self.name = name

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if value != int(value):
                raise TypeError_(f"cannot coerce non-integral {value!r} to {self.name}")
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError as exc:
                raise TypeError_(f"cannot coerce {value!r} to {self.name}") from exc
        raise TypeError_(f"cannot coerce {value!r} to {self.name}")

    def is_numeric(self) -> bool:
        return True


class DoubleType(DataType):
    """SQL DOUBLE PRECISION / FLOAT / REAL / NUMERIC."""

    name = "double precision"

    def __init__(self, name: str = "double precision"):
        self.name = name

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise TypeError_(f"cannot coerce {value!r} to {self.name}") from exc
        raise TypeError_(f"cannot coerce {value!r} to {self.name}")

    def is_numeric(self) -> bool:
        return True


class VarcharType(DataType):
    """SQL VARCHAR(n) / TEXT (``length`` of None means unbounded)."""

    name = "varchar"

    def __init__(self, length=None, name: str = "varchar"):
        self.length = length
        self.name = name

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            text = "true" if value else "false"
        elif isinstance(value, str):
            text = value
        else:
            text = str(value)
        if self.length is not None and len(text) > self.length:
            raise ConstraintError(
                f"value of length {len(text)} exceeds {self.sql_name()}"
            )
        return text

    def sql_name(self) -> str:
        if self.length is not None:
            return f"{self.name}({self.length})"
        return self.name


class TimestampType(DataType):
    """SQL TIMESTAMP, stored as epoch seconds (float)."""

    name = "timestamp"

    def coerce(self, value):
        if value is None:
            return None
        return parse_timestamp(value)

    def is_numeric(self) -> bool:
        return True


class IntervalType(DataType):
    """SQL INTERVAL, stored as seconds (float)."""

    name = "interval"

    def coerce(self, value):
        if value is None:
            return None
        return parse_interval(value)

    def is_numeric(self) -> bool:
        return True


_SIMPLE_TYPES = {
    "bool": lambda: BooleanType(),
    "boolean": lambda: BooleanType(),
    "int": lambda: IntegerType("integer"),
    "integer": lambda: IntegerType("integer"),
    "int4": lambda: IntegerType("integer"),
    "int8": lambda: IntegerType("bigint"),
    "bigint": lambda: IntegerType("bigint"),
    "smallint": lambda: IntegerType("smallint"),
    "serial": lambda: IntegerType("integer"),
    "float": lambda: DoubleType(),
    "float8": lambda: DoubleType(),
    "real": lambda: DoubleType("real"),
    "double": lambda: DoubleType(),
    "double precision": lambda: DoubleType(),
    "numeric": lambda: DoubleType("numeric"),
    "decimal": lambda: DoubleType("numeric"),
    "text": lambda: VarcharType(None, "text"),
    "varchar": lambda: VarcharType(None, "varchar"),
    "char": lambda: VarcharType(None, "char"),
    "character varying": lambda: VarcharType(None, "varchar"),
    "timestamp": lambda: TimestampType(),
    "timestamptz": lambda: TimestampType(),
    "date": lambda: TimestampType(),
    "interval": lambda: IntervalType(),
}


def type_from_name(name: str, length=None) -> DataType:
    """Build a :class:`DataType` from its SQL spelling.

    ``length`` applies to character types (``varchar(50)``).

    >>> type_from_name('varchar', 50).sql_name()
    'varchar(50)'
    """
    key = name.strip().lower()
    if key not in _SIMPLE_TYPES:
        raise TypeError_(f"unknown type name {name!r}")
    made = _SIMPLE_TYPES[key]()
    if length is not None:
        if not isinstance(made, VarcharType):
            raise TypeError_(f"type {name!r} does not take a length")
        made = VarcharType(length, made.name)
    return made
