"""Runtime value semantics: SQL three-valued comparisons, sorting, LIKE.

SQL NULL is represented by Python ``None``.  Comparisons involving NULL
return ``None`` (unknown); the executor treats unknown as false in WHERE
clauses, per the standard.
"""

from __future__ import annotations

import re

from repro.errors import TypeError_

#: canonical NULL value (an alias for readability in engine code)
NULL = None


def _comparable(left, right):
    """Normalise a pair of values so Python comparison is meaningful."""
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return int(left), int(right)
        # bool vs number compares numerically, bool vs string is an error
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return float(left), float(right)
        raise TypeError_(f"cannot compare {left!r} with {right!r}")
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    raise TypeError_(f"cannot compare {left!r} with {right!r}")


def sql_compare(left, right):
    """Three-valued comparison: -1/0/1, or ``None`` if either side is NULL.

    >>> sql_compare(1, 2)
    -1
    >>> sql_compare('b', 'b')
    0
    >>> sql_compare(None, 1) is None
    True
    """
    if left is None or right is None:
        return None
    lhs, rhs = _comparable(left, right)
    if lhs < rhs:
        return -1
    if lhs > rhs:
        return 1
    return 0


def sql_equal(left, right):
    """Three-valued equality (``None`` when either side is NULL)."""
    comparison = sql_compare(left, right)
    if comparison is None:
        return None
    return comparison == 0


class _SortKey:
    """Wrapper making heterogeneous rows orderable with NULLS LAST."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def _rank(self):
        # NULLs sort after every non-null value (ascending), matching
        # PostgreSQL's default NULLS LAST behaviour.
        value = self.value
        if value is None:
            return 2, 0
        if isinstance(value, bool):
            return 0, float(value)
        if isinstance(value, (int, float)):
            return 0, float(value)
        return 1, value

    def __lt__(self, other):
        srank, sval = self._rank()
        orank, oval = other._rank()
        if srank != orank:
            return srank < orank
        return sval < oval

    def __eq__(self, other):
        return self._rank() == other._rank()


def sql_sort_key(value) -> _SortKey:
    """Key function for sorting SQL values (numbers < strings < NULL)."""
    return _SortKey(value)


_LIKE_CACHE: dict = {}


def _like_regex(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        out = []
        i = 0
        while i < len(pattern):
            ch = pattern[i]
            if ch == "\\" and i + 1 < len(pattern):
                out.append(re.escape(pattern[i + 1]))
                i += 2
                continue
            if ch == "%":
                out.append(".*")
            elif ch == "_":
                out.append(".")
            else:
                out.append(re.escape(ch))
            i += 1
        compiled = re.compile("^" + "".join(out) + "$", re.DOTALL)
        if len(_LIKE_CACHE) > 4096:
            _LIKE_CACHE.clear()
        _LIKE_CACHE[pattern] = compiled
    return compiled


def sql_like(value, pattern, case_insensitive: bool = False):
    """SQL LIKE / ILIKE; three-valued (NULL input gives NULL).

    >>> sql_like('hello', 'he%')
    True
    >>> sql_like('hello', 'H_llo', case_insensitive=True)
    True
    """
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise TypeError_("LIKE requires string operands")
    if case_insensitive:
        return _like_regex(pattern.lower()).match(value.lower()) is not None
    return _like_regex(pattern).match(value) is not None
