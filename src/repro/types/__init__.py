"""SQL type system: data types, value coercion, timestamps and intervals.

Values are represented as plain Python objects (``int``, ``float``, ``str``,
``bool``, ``None``); TIMESTAMP values are epoch seconds as ``float`` and
INTERVAL values are second counts as ``float``.  The classes in
:mod:`repro.types.datatypes` describe the declared SQL types and perform
coercion/validation; :mod:`repro.types.temporal` parses timestamp and
interval literals.
"""

from repro.types.datatypes import (
    BooleanType,
    DataType,
    DoubleType,
    IntegerType,
    IntervalType,
    TimestampType,
    VarcharType,
    type_from_name,
)
from repro.types.temporal import (
    format_timestamp,
    parse_interval,
    parse_timestamp,
)
from repro.types.values import (
    NULL,
    sql_compare,
    sql_equal,
    sql_like,
    sql_sort_key,
)

__all__ = [
    "DataType",
    "BooleanType",
    "IntegerType",
    "DoubleType",
    "VarcharType",
    "TimestampType",
    "IntervalType",
    "type_from_name",
    "parse_interval",
    "parse_timestamp",
    "format_timestamp",
    "NULL",
    "sql_compare",
    "sql_equal",
    "sql_like",
    "sql_sort_key",
]
