"""Parsing and formatting of TIMESTAMP and INTERVAL literals.

Internally a timestamp is a ``float`` of epoch seconds (UTC) and an
interval is a ``float`` of seconds.  This keeps window arithmetic —
the heart of the streaming engine — to plain float math.
"""

from __future__ import annotations

import datetime as _dt
import re

from repro.errors import TypeError_

#: seconds per unit, keyed by the singular unit name
_UNIT_SECONDS = {
    "microsecond": 1e-6,
    "millisecond": 1e-3,
    "second": 1.0,
    "minute": 60.0,
    "hour": 3600.0,
    "day": 86400.0,
    "week": 7 * 86400.0,
    "month": 30 * 86400.0,
    "year": 365 * 86400.0,
}

#: common abbreviations accepted in interval literals
_UNIT_ALIASES = {
    "us": "microsecond",
    "usec": "microsecond",
    "ms": "millisecond",
    "msec": "millisecond",
    "s": "second",
    "sec": "second",
    "secs": "second",
    "m": "minute",
    "min": "minute",
    "mins": "minute",
    "h": "hour",
    "hr": "hour",
    "hrs": "hour",
    "d": "day",
    "w": "week",
    "mon": "month",
    "mons": "month",
    "y": "year",
    "yr": "year",
    "yrs": "year",
}

_INTERVAL_PART = re.compile(
    r"\s*([+-]?\d+(?:\.\d+)?)\s*([a-zA-Z]+)\s*"
)

_CLOCK_INTERVAL = re.compile(
    r"^\s*([+-]?)(\d+):(\d{1,2})(?::(\d{1,2}(?:\.\d+)?))?\s*$"
)


def parse_interval(text) -> float:
    """Parse an interval literal into seconds.

    Accepts PostgreSQL-style literals such as ``'5 minutes'``,
    ``'1 week'``, ``'1 hour 30 minutes'``, clock syntax ``'01:30:00'``
    and bare numbers (seconds).  Numeric input passes straight through.

    >>> parse_interval('5 minutes')
    300.0
    >>> parse_interval('1 hour 30 minutes')
    5400.0
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text)
    if not isinstance(text, str):
        raise TypeError_(f"cannot parse interval from {text!r}")

    stripped = text.strip()
    if not stripped:
        raise TypeError_("empty interval literal")

    clock = _CLOCK_INTERVAL.match(stripped)
    if clock:
        sign = -1.0 if clock.group(1) == "-" else 1.0
        hours = float(clock.group(2))
        minutes = float(clock.group(3))
        seconds = float(clock.group(4) or 0.0)
        return sign * (hours * 3600.0 + minutes * 60.0 + seconds)

    try:
        return float(stripped)
    except ValueError:
        pass

    total = 0.0
    pos = 0
    matched_any = False
    while pos < len(stripped):
        match = _INTERVAL_PART.match(stripped, pos)
        if not match:
            raise TypeError_(f"invalid interval literal: {text!r}")
        quantity = float(match.group(1))
        unit = match.group(2).lower()
        unit = _UNIT_ALIASES.get(unit, unit)
        if unit.endswith("s") and unit not in _UNIT_SECONDS:
            unit = unit[:-1]
        if unit not in _UNIT_SECONDS:
            raise TypeError_(f"unknown interval unit {match.group(2)!r}")
        total += quantity * _UNIT_SECONDS[unit]
        matched_any = True
        pos = match.end()
    if not matched_any:
        raise TypeError_(f"invalid interval literal: {text!r}")
    return total


_TS_FORMATS = (
    "%Y-%m-%d %H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S.%f",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
)


def parse_timestamp(text) -> float:
    """Parse a timestamp literal into epoch seconds (UTC).

    Accepts ISO-style date/time strings and raw epoch numbers.

    >>> parse_timestamp('1970-01-01 00:01:00')
    60.0
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text)
    if isinstance(text, _dt.datetime):
        if text.tzinfo is None:
            text = text.replace(tzinfo=_dt.timezone.utc)
        return text.timestamp()
    if not isinstance(text, str):
        raise TypeError_(f"cannot parse timestamp from {text!r}")

    stripped = text.strip()
    try:
        return float(stripped)
    except ValueError:
        pass
    for fmt in _TS_FORMATS:
        try:
            parsed = _dt.datetime.strptime(stripped, fmt)
        except ValueError:
            continue
        parsed = parsed.replace(tzinfo=_dt.timezone.utc)
        return parsed.timestamp()
    raise TypeError_(f"invalid timestamp literal: {text!r}")


def format_timestamp(epoch: float) -> str:
    """Render epoch seconds as an ISO string (UTC, microsecond precision).

    >>> format_timestamp(60.0)
    '1970-01-01 00:01:00'
    """
    moment = _dt.datetime.fromtimestamp(epoch, tz=_dt.timezone.utc)
    if moment.microsecond:
        return moment.strftime("%Y-%m-%d %H:%M:%S.%f")
    return moment.strftime("%Y-%m-%d %H:%M:%S")
