"""Synthetic workload generators standing in for production feeds.

The paper's motivating workloads are network-effect clickstreams and
security event feeds: additive, time-ordered, Zipf-skewed keys, known
queries.  These generators reproduce those properties deterministically
(seeded) so every experiment is repeatable.
"""

from repro.workloads.generators import (
    ArrivalProcess,
    OutOfOrderEvents,
    ZipfGenerator,
    growth_series,
)
from repro.workloads.clickstream import ClickstreamGenerator
from repro.workloads.security import SecurityEventGenerator

__all__ = [
    "ZipfGenerator",
    "ArrivalProcess",
    "OutOfOrderEvents",
    "growth_series",
    "ClickstreamGenerator",
    "SecurityEventGenerator",
]
