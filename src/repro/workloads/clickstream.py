"""Clickstream generator: the paper's url_stream workload (Example 1).

Produces ``(url, atime, client_ip)`` tuples — Zipf-popular URLs, a pool
of client IPs, and a configurable arrival process — matching the schema
of the paper's ``url_stream``.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.workloads.generators import ArrivalProcess, ZipfGenerator

ClickEvent = Tuple[str, float, str]  # (url, atime, client_ip)

#: DDL for the stream these events feed (verbatim from the paper)
URL_STREAM_DDL = """
CREATE STREAM url_stream (
    url varchar(1024),
    atime timestamp CQTIME USER,
    client_ip varchar(50)
)
"""


class ClickstreamGenerator:
    """Deterministic stream of page-view events."""

    def __init__(self, n_urls: int = 1000, n_clients: int = 500,
                 zipf_s: float = 1.1, rate_per_second: float = 100.0,
                 start_time: float = 0.0, arrival_kind: str = "uniform",
                 seed: int = 42):
        self.n_urls = n_urls
        self._urls = ZipfGenerator(n_urls, zipf_s, seed)
        self._arrivals = ArrivalProcess(rate_per_second, start_time,
                                        arrival_kind, seed + 1)
        self._rng = random.Random(seed + 2)
        self.n_clients = n_clients

    def url_name(self, index: int) -> str:
        return f"/page/{index:05d}"

    def events(self, count: int) -> Iterator[ClickEvent]:
        """Yield ``count`` events in non-decreasing time order."""
        for _ in range(count):
            url = self.url_name(self._urls.draw())
            atime = self._arrivals.next_time()
            client = f"10.0.{self._rng.randrange(256)}.{self._rng.randrange(256)}"
            yield (url, atime, client)

    def batch(self, count: int) -> List[ClickEvent]:
        return list(self.events(count))
