"""Network-security event generator — the paper's Section 4 use case.

"in one scenario for a network security reporting application, a
batch-oriented query taking over 20 minutes ... was produced in
milliseconds".  We cannot obtain that customer's feed, so this generator
produces the closest synthetic equivalent: firewall/IDS-style events
``(etime, src_ip, dst_ip, dst_port, action, severity, bytes_sent)`` with
skewed source IPs (a few noisy hosts), a small set of hot ports, and a
block/allow mix — the properties the reporting rollups aggregate over.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.workloads.generators import ArrivalProcess, ZipfGenerator

SecurityEvent = Tuple[float, str, str, int, str, int, int]

#: DDL for the stream these events feed
SECURITY_STREAM_DDL = """
CREATE STREAM security_events (
    etime timestamp CQTIME USER,
    src_ip varchar(50),
    dst_ip varchar(50),
    dst_port integer,
    action varchar(10),
    severity integer,
    bytes_sent bigint
)
"""

#: matching raw table for the store-first baseline
SECURITY_TABLE_DDL = """
CREATE TABLE security_events_raw (
    etime timestamp,
    src_ip varchar(50),
    dst_ip varchar(50),
    dst_port integer,
    action varchar(10),
    severity integer,
    bytes_sent bigint
)
"""

_HOT_PORTS = [22, 23, 80, 443, 445, 3389, 8080, 3306]
_ACTIONS = ["allow", "block", "alert"]


class SecurityEventGenerator:
    """Deterministic stream of firewall/IDS events."""

    def __init__(self, n_sources: int = 2000, n_destinations: int = 200,
                 zipf_s: float = 1.2, rate_per_second: float = 500.0,
                 start_time: float = 0.0, seed: int = 7):
        self._sources = ZipfGenerator(n_sources, zipf_s, seed)
        self._arrivals = ArrivalProcess(rate_per_second, start_time,
                                        "uniform", seed + 1)
        self._rng = random.Random(seed + 2)
        self.n_destinations = n_destinations

    def events(self, count: int) -> Iterator[SecurityEvent]:
        rng = self._rng
        for _ in range(count):
            etime = self._arrivals.next_time()
            src = f"192.168.{self._sources.draw() % 256}.{self._sources.draw() % 256}"
            dst = f"10.1.0.{rng.randrange(self.n_destinations)}"
            if rng.random() < 0.8:
                port = _HOT_PORTS[rng.randrange(len(_HOT_PORTS))]
            else:
                port = rng.randrange(1024, 65536)
            action = _ACTIONS[min(2, int(rng.random() * 3.3))]
            severity = rng.randrange(1, 6)
            nbytes = int(rng.lognormvariate(6.0, 1.5))
            yield (etime, src, dst, port, action, severity, nbytes)

    def batch(self, count: int) -> List[SecurityEvent]:
        return list(self.events(count))
