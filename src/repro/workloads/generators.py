"""Building blocks: skewed key choice and arrival-time processes."""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, List, Tuple


class ZipfGenerator:
    """Draws integers in [0, n) with a Zipf(s) distribution.

    Uses an inverse-CDF table so draws are O(log n) and exactly
    reproducible from the seed — web URL popularity is famously Zipfian,
    which is why the paper's top-K URL metric (Example 2) is interesting
    at all.
    """

    def __init__(self, n: int, s: float = 1.1, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cdf.append(running)
        self._cdf[-1] = 1.0

    def draw(self) -> int:
        """One draw: 0 is the most popular key."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def draws(self, count: int) -> List[int]:
        return [self.draw() for _ in range(count)]


class ArrivalProcess:
    """Event timestamps: uniform, Poisson, or diurnal-bursty arrivals."""

    def __init__(self, rate_per_second: float, start_time: float = 0.0,
                 kind: str = "uniform", seed: int = 0,
                 burst_period: float = 3600.0, burst_factor: float = 3.0):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_per_second
        self.kind = kind
        self.start_time = start_time
        self.burst_period = burst_period
        self.burst_factor = burst_factor
        self._rng = random.Random(seed)
        self._now = start_time

    def next_time(self) -> float:
        """The next event's timestamp (monotonically non-decreasing)."""
        if self.kind == "uniform":
            self._now += 1.0 / self.rate
        elif self.kind == "poisson":
            self._now += self._rng.expovariate(self.rate)
        elif self.kind == "bursty":
            phase = (self._now - self.start_time) % self.burst_period
            # rate swings between rate/factor and rate*factor over a period
            swing = math.sin(2 * math.pi * phase / self.burst_period)
            local_rate = self.rate * (self.burst_factor ** swing)
            self._now += self._rng.expovariate(local_rate)
        else:
            raise ValueError(f"unknown arrival kind {self.kind!r}")
        return self._now

    def times(self, count: int) -> Iterator[float]:
        for _ in range(count):
            yield self.next_time()


class OutOfOrderEvents:
    """Reorders timestamped events the way real networks do.

    Each event is held back by a random delivery delay before it
    reaches the server.  The common case is a bounded skew drawn
    uniformly from ``[0, bound]`` — such an event is always on time for
    a watermark tracking out-of-orderness ``>= bound`` — and with
    probability ``straggler_prob`` the event is a heavy-tail straggler
    delayed by ``bound * (1/u) ** tail`` (a Pareto tail modelling the
    phone that reconnects minutes after leaving a dead zone), which can
    land behind the watermark and exercise the lateness policies.

    Deterministic from the seed, so tests and the X6 bench replay the
    exact same arrival order.
    """

    def __init__(self, bound: float, straggler_prob: float = 0.0,
                 tail: float = 1.0, seed: int = 0):
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if not 0.0 <= straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1]")
        if tail <= 0:
            raise ValueError("tail must be positive")
        self.bound = bound
        self.straggler_prob = straggler_prob
        self.tail = tail
        self._rng = random.Random(seed)

    def delay(self) -> float:
        """One delivery delay; ``<= bound`` unless it's a straggler."""
        if self.straggler_prob and self._rng.random() < self.straggler_prob:
            u = self._rng.random() or 1e-12
            return self.bound * (1.0 / u) ** self.tail
        return self._rng.random() * self.bound

    def arrivals(self, event_times: Iterable[float]) -> List[Tuple[float, float]]:
        """``(arrival_time, event_time)`` pairs sorted by arrival.

        The sort is stable, so two events arriving at the same instant
        keep their event-time order.
        """
        pairs = [(t + self.delay(), t) for t in event_times]
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def arrival_order(self, event_times: Iterable[float]) -> List[float]:
        """Event times in the order the network delivers them."""
        return [event for _, event in self.arrivals(event_times)]


def growth_series(base: int, factor: float, steps: int) -> List[int]:
    """Data volumes under compound growth — the Network Effect #1 sweep.

    ``growth_series(10_000, 10, 3)`` models the paper's "10x per year":
    [10000, 100000, 1000000].
    """
    return [int(base * factor ** i) for i in range(steps)]
