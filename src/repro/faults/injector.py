"""The crashpoint registry and the seeded fault injector.

Instrumented code sites call :meth:`FaultInjector.check` (raise on fire)
or :meth:`FaultInjector.should` (boolean, for faults that corrupt rather
than raise, like a torn WAL write).  The disarmed fast path is a single
attribute test plus a dict lookup, so a wired-but-idle injector costs
effectively nothing — the X2 chaos benchmark holds supervision plus an
idle injector to <= 10% overhead on the E1 workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, Optional

from repro.errors import FaultInjected

#: name -> human description of every instrumented site
CRASHPOINTS: Dict[str, str] = {}


def register_crashpoint(name: str, description: str) -> str:
    """Declare an instrumented site (idempotent); returns ``name``."""
    CRASHPOINTS.setdefault(name, description)
    return name


def crashpoint_names():
    return sorted(CRASHPOINTS)


# the built-in sites, registered up front so introspection (the
# repro_crashpoints system view, docs/FAULTS.md) shows the full menu even
# before any module-level instrumentation has executed
DISK_READ = register_crashpoint(
    "disk.read_page", "I/O error on a simulated-disk page read")
DISK_WRITE = register_crashpoint(
    "disk.write_page", "I/O error on a simulated-disk page write")
WAL_TORN_WRITE = register_crashpoint(
    "wal.torn_write",
    "partial/torn write of the last WAL record during a flush")
BUFFER_EVICT = register_crashpoint(
    "buffer.evict", "write-back failure while evicting a dirty page")
STREAM_DELIVER = register_crashpoint(
    "stream.deliver", "a stream subscriber raises during tuple fan-out")
STREAM_SLOW_CONSUMER = register_crashpoint(
    "stream.slow_consumer", "a subscriber is slow; delivery lags")
CQ_WINDOW = register_crashpoint(
    "cq.window", "a CQ's per-window plan execution fails (poison window)")
CHANNEL_WRITE = register_crashpoint(
    "channel.write", "a channel's transactional archive write fails")
REPLICATION_SHIP = register_crashpoint(
    "replication.ship",
    "a WAL shipping batch is dropped before reaching the standby")
REPLICATION_APPLY = register_crashpoint(
    "replication.apply",
    "the standby applier rejects a shipped WAL record (poison record)")
SERVER_BOOT_RECOVERY = register_crashpoint(
    "server.boot_recovery",
    "one CQ's runtime-state rebuild fails during boot/promotion recovery")
ADMISSION_QUOTA_CHECK = register_crashpoint(
    "admission.quota_check",
    "the admission quota check dies mid-decision (batch refused, retryable)")
ADMISSION_DEDUP_PERSIST = register_crashpoint(
    "admission.dedup_persist",
    "crash between applying a batch's rows and flushing its dedup marker")
EVENTTIME_WATERMARK_PERSIST = register_crashpoint(
    "eventtime.watermark_persist",
    "crash between a watermark advance and the WAL flush making it durable")
WAL_SEGMENT_ROLL = register_crashpoint(
    "wal.segment_roll",
    "crash while sealing the active WAL segment and opening the next")
WAL_COMPACT = register_crashpoint(
    "wal.compact",
    "crash mid-compaction: segment copied to the archive, live copy "
    "not yet deleted")
BACKUP_SNAPSHOT = register_crashpoint(
    "backup.snapshot",
    "crash while copying sealed segments into an online backup")
SCRUB_VERIFY = register_crashpoint(
    "scrub.verify",
    "the integrity scrubber dies mid-pass over sealed segments")
PARTITION_ROUTE = register_crashpoint(
    "partition.route",
    "the coordinator's ingest router dies before any shard is sent "
    "(batch refused atomically, retryable)")
PARTITION_MERGE = register_crashpoint(
    "partition.merge",
    "the coordinator merge stage dies before emitting a merged window "
    "(partials retained, boundary stays pending)")
PARTITION_WORKER_CRASH = register_crashpoint(
    "partition.worker_crash",
    "a partition worker dies while shipping window partials "
    "(coordinator restarts it with replay)")


@dataclass
class FaultPlan:
    """How one armed crashpoint misbehaves."""

    probability: float = 1.0
    count: Optional[int] = None   # remaining fires; None = unlimited
    after: int = 0                # skip the first N evaluations
    exc_factory: Optional[object] = None  # callable(detail) -> Exception
    evaluations: int = 0
    fires: int = 0

    def exhausted(self) -> bool:
        return self.count is not None and self.fires >= self.count


class FaultInjector:
    """Seeded, deterministic fault scheduler over the crashpoint registry.

    One injector is shared by a whole :class:`~repro.core.database.Database`
    (storage and streaming layers); all probabilistic decisions come from
    its single seeded RNG, in instrumentation-site call order.  Because
    the engine is single-threaded and event-time driven, a fixed seed
    replays the identical fault schedule.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = Random(seed)
        self._plans: Dict[str, FaultPlan] = {}
        self.total_fires = 0
        #: plain attribute, not a property: the disarmed fast path is
        #: tested once per delivered tuple, so it must be a single load
        self.armed = False

    # -- arming ------------------------------------------------------------

    def arm(self, crashpoint: str, probability: float = 1.0,
            count: Optional[int] = None, after: int = 0,
            exc_factory=None) -> FaultPlan:
        """Arm ``crashpoint``: fire with ``probability`` per evaluation,
        at most ``count`` times, skipping the first ``after`` evaluations.
        """
        if crashpoint not in CRASHPOINTS:
            raise ValueError(f"unknown crashpoint {crashpoint!r}; "
                             f"known: {', '.join(crashpoint_names())}")
        plan = FaultPlan(probability=float(probability), count=count,
                         after=int(after), exc_factory=exc_factory)
        self._plans[crashpoint] = plan
        self.armed = True
        return plan

    def disarm(self, crashpoint: Optional[str] = None) -> None:
        """Disarm one crashpoint (or all of them)."""
        if crashpoint is None:
            self._plans.clear()
        else:
            self._plans.pop(crashpoint, None)
        self.armed = bool(self._plans)

    def reset(self) -> None:
        """Disarm everything and re-seed the RNG (fresh schedule)."""
        self._plans.clear()
        self._rng = Random(self.seed)
        self.total_fires = 0
        self.armed = False

    def plan(self, crashpoint: str) -> Optional[FaultPlan]:
        return self._plans.get(crashpoint)

    # -- evaluation --------------------------------------------------------

    def should(self, crashpoint: str) -> bool:
        """Evaluate one crashpoint; True when the fault fires now.

        Used by sites whose fault is a *corruption* rather than an
        exception (e.g. the torn WAL write).
        """
        plan = self._plans.get(crashpoint)
        if plan is None:
            return False
        plan.evaluations += 1
        if plan.evaluations <= plan.after or plan.exhausted():
            return False
        if plan.probability < 1.0 and self._rng.random() >= plan.probability:
            return False
        plan.fires += 1
        self.total_fires += 1
        if plan.exhausted():
            # leave the exhausted plan in place so stats stay queryable
            pass
        return True

    def poll(self, crashpoint: str, detail: str = "") -> Optional[Exception]:
        """Like :meth:`check` but returns the exception instead of raising
        (for sites that fold injected failures into an error list)."""
        if not self.should(crashpoint):
            return None
        return self._make_exc(crashpoint, detail)

    def check(self, crashpoint: str, detail: str = "") -> None:
        """Evaluate one crashpoint; raise the injected fault if it fires."""
        if self.should(crashpoint):
            raise self._make_exc(crashpoint, detail)

    def _make_exc(self, crashpoint: str, detail: str) -> Exception:
        plan = self._plans.get(crashpoint)
        if plan is not None and plan.exc_factory is not None:
            return plan.exc_factory(detail)
        suffix = f": {detail}" if detail else ""
        return FaultInjected(f"injected fault at {crashpoint}{suffix}",
                             crashpoint=crashpoint)

    # -- introspection -----------------------------------------------------

    def stats_rows(self):
        """(crashpoint, armed, probability, evaluations, fires) per site."""
        out = []
        for name in crashpoint_names():
            plan = self._plans.get(name)
            if plan is None:
                out.append((name, False, None, 0, 0))
            else:
                out.append((name, not plan.exhausted(), plan.probability,
                            plan.evaluations, plan.fires))
        return out

    def __repr__(self):
        armed = ", ".join(sorted(self._plans)) or "disarmed"
        return f"FaultInjector(seed={self.seed}, {armed})"
