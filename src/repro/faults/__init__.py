"""Deterministic fault injection for the stream-relational engine.

A production continuous-analytics deployment "cannot stop the world"
when one query, one subscriber or one disk write misbehaves (the paper's
Section 4 recovery argument).  This package supplies the other half of
that claim: a way to *make* those components misbehave, deterministically,
so the supervised runtime (:mod:`repro.streaming.supervisor`) can be
proven to degrade gracefully instead of crashing.

Crashpoints are named sites instrumented throughout the storage and
streaming layers (``disk.read_page``, ``wal.torn_write``,
``stream.deliver`` ...).  A seeded :class:`FaultInjector` is armed per
crashpoint with a probability and an optional fire budget; every armed
decision is drawn from one seeded RNG, so a chaos run with a fixed seed
replays the exact same fault schedule every time.
"""

from repro.faults.injector import (
    CRASHPOINTS,
    FaultInjector,
    FaultPlan,
    crashpoint_names,
    register_crashpoint,
)

__all__ = [
    "CRASHPOINTS",
    "FaultInjector",
    "FaultPlan",
    "crashpoint_names",
    "register_crashpoint",
]
