"""The admission controller: tenants, quotas, and tiered load shedding.

One controller guards one database.  Sessions bind a tenant name at
handshake; every ingest batch passes through :meth:`AdmissionController.admit`
*on the event-loop thread, before the engine is touched* — the point of
admission control is that over-limit work never costs engine time.

Checks, in order:

1. **cumulative quotas** (rows / bytes per tenant) — exhaustion is a
   durable refusal: ``AdmissionError`` with ``retry_after_ms=None``;
2. **pressure tiers**, keyed on the engine executor's queue depth:
   at ``hard_depth`` the batch is *shed* (accepted on the wire, rows
   dropped with dead-letter accounting); at ``soft_depth`` bulk batches
   are rejected with a retry hint while small ones still flow;
3. **token bucket** rate limit — a transient refusal carrying the
   bucket's own refill time as ``retry_after_ms``.

Everything here runs under the controller's own lock, never the
engine's; counters are plain ints surfaced through ``repro_tenants`` /
``repro_admission`` and callback gauges in ``repro_metrics``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

from repro.admission.bucket import TokenBucket
from repro.admission.dedup import DedupIndex
from repro.clock import Clock, SYSTEM_CLOCK
from repro.errors import AdmissionError

#: the tenant sessions belong to until their hello names one
DEFAULT_TENANT = "default"

#: retry hint handed out for tier-1 overload rejections
OVERLOAD_RETRY_MS = 100


class Tenant:
    """Limits and counters for one named tenant."""

    def __init__(self, name: str, weight: float = 1.0):
        self.name = name
        self.weight = float(weight)
        self.rate_limit: Optional[float] = None   # rows/second
        self.burst: Optional[float] = None        # bucket size (rows)
        self.row_quota: Optional[int] = None      # cumulative rows
        self.byte_quota: Optional[int] = None     # cumulative bytes
        self.bucket: Optional[TokenBucket] = None
        self.sessions = 0
        # counters (admitted are recorded post-engine, from the ack)
        self.rows_ingested = 0
        self.bytes_ingested = 0
        self.batches_admitted = 0
        self.batches_rejected = 0
        self.batches_shed = 0
        self.rows_rejected = 0
        self.rows_shed = 0
        self.duplicates = 0

    def ensure_bucket(self, clock: Clock) -> Optional[TokenBucket]:
        if self.rate_limit is None:
            self.bucket = None
            return None
        burst = self.burst if self.burst is not None else self.rate_limit
        if self.bucket is None:
            self.bucket = TokenBucket(self.rate_limit, burst, clock)
        else:
            self.bucket.configure(self.rate_limit, burst)
        return self.bucket


class AdmissionController:
    """Tenant registry + admission decisions for one database."""

    #: per-tenant limit options settable as defaults (SET tenant_*)
    LIMIT_OPTIONS = ("rate_limit", "burst", "row_quota", "byte_quota",
                     "weight")

    def __init__(self, clock: Clock = SYSTEM_CLOCK, faults=None,
                 dedup_window: int = None):
        self.clock = clock
        self.faults = faults
        self.enabled = False
        self.soft_depth = 64     # tier 1: reject bulk ingest
        self.hard_depth = 256    # tier 2: shed per-tenant
        self.bulk_rows = 32      # a batch this large counts as "bulk"
        self.defaults: Dict[str, Optional[float]] = {
            "rate_limit": None, "burst": None,
            "row_quota": None, "byte_quota": None, "weight": 1.0,
        }
        kwargs = {} if dedup_window is None else {"window": dedup_window}
        self.dedup = DedupIndex(**kwargs)
        self._tenants: Dict[str, Tenant] = {}
        self._lock = threading.Lock()
        # set by the server: zero-arg callable returning the engine
        # executor's queue depth (the pressure signal)
        self.depth_probe = lambda: 0
        # totals across tenants (cheap gauges for repro_metrics)
        self.batches_admitted = 0
        self.batches_rejected = 0
        self.batches_shed = 0
        self.rows_admitted = 0
        self.rows_rejected = 0
        self.rows_shed = 0

    # ------------------------------------------------------------------
    # tenant registry
    # ------------------------------------------------------------------

    def tenant(self, name: str) -> Tenant:
        """The named tenant, created with current defaults on first use."""
        with self._lock:
            return self._tenant_locked(name)

    def _tenant_locked(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = Tenant(name, weight=self.defaults["weight"])
            tenant.rate_limit = self.defaults["rate_limit"]
            tenant.burst = self.defaults["burst"]
            tenant.row_quota = self.defaults["row_quota"]
            tenant.byte_quota = self.defaults["byte_quota"]
            tenant.ensure_bucket(self.clock)
            self._tenants[name] = tenant
        return tenant

    def configure_tenant(self, name: str, **limits) -> Tenant:
        """Set per-tenant limits explicitly (tests, future DDL)."""
        with self._lock:
            tenant = self._tenant_locked(name)
            for key, value in limits.items():
                if key not in self.LIMIT_OPTIONS:
                    raise ValueError(f"unknown tenant limit {key!r}")
                setattr(tenant, key, value)
            tenant.ensure_bucket(self.clock)
            return tenant

    def set_default(self, option: str, value) -> None:
        """Change a default limit and apply it to every known tenant
        (mirrors how SET backpressure_policy retunes live streams)."""
        if option not in self.LIMIT_OPTIONS:
            raise ValueError(f"unknown tenant limit {option!r}")
        with self._lock:
            self.defaults[option] = value
            for tenant in self._tenants.values():
                setattr(tenant, option, value)
                tenant.ensure_bucket(self.clock)

    def tenant_weight(self, name: Optional[str]) -> float:
        with self._lock:
            tenant = self._tenants.get(name) if name else None
            if tenant is not None:
                return tenant.weight
            return float(self.defaults["weight"])

    # -- session binding ---------------------------------------------------

    def bind_session(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenant_locked(name)
            tenant.sessions += 1
            return tenant

    def release_session(self, name: str) -> None:
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is not None and tenant.sessions > 0:
                tenant.sessions -= 1

    # ------------------------------------------------------------------
    # the admission decision
    # ------------------------------------------------------------------

    def admit(self, tenant_name: str, rows: int, nbytes: int) -> str:
        """Admit, shed, or refuse one ingest batch.

        Returns ``"admit"`` or ``"shed"``; raises :class:`AdmissionError`
        for refusals.  Sheds and refusals are counted here; admissions
        are counted in :meth:`record_result` once the engine reports
        what actually stuck.
        """
        with self._lock:
            tenant = self._tenant_locked(tenant_name)
            faults = self.faults
            if faults is not None and faults.armed:
                injected = faults.poll("admission.quota_check", tenant_name)
                if injected is not None:
                    # the quota check itself died mid-flight: refuse the
                    # batch (nothing was applied) and tell the client to
                    # retry — rejection, never corruption
                    tenant.batches_rejected += 1
                    tenant.rows_rejected += rows
                    self.batches_rejected += 1
                    self.rows_rejected += rows
                    raise AdmissionError(
                        f"admission check failed: {injected}",
                        retry_after_ms=OVERLOAD_RETRY_MS,
                        tenant=tenant_name, reason="fault")
            if not self.enabled:
                return "admit"
            if tenant.row_quota is not None \
                    and tenant.rows_ingested + rows > tenant.row_quota:
                self._count_rejection(tenant, rows)
                raise AdmissionError(
                    f"tenant {tenant_name!r} exceeded its row quota "
                    f"({tenant.rows_ingested}/{tenant.row_quota} used, "
                    f"batch of {rows} refused)",
                    retry_after_ms=None, tenant=tenant_name,
                    reason="row-quota")
            if tenant.byte_quota is not None \
                    and tenant.bytes_ingested + nbytes > tenant.byte_quota:
                self._count_rejection(tenant, rows)
                raise AdmissionError(
                    f"tenant {tenant_name!r} exceeded its byte quota "
                    f"({tenant.bytes_ingested}/{tenant.byte_quota} used, "
                    f"batch of {nbytes} bytes refused)",
                    retry_after_ms=None, tenant=tenant_name,
                    reason="byte-quota")
            depth = self.depth_probe()
            if depth >= self.hard_depth:
                tenant.batches_shed += 1
                tenant.rows_shed += rows
                self.batches_shed += 1
                self.rows_shed += rows
                return "shed"
            if depth >= self.soft_depth and rows >= self.bulk_rows:
                self._count_rejection(tenant, rows)
                raise AdmissionError(
                    f"engine overloaded (queue depth {depth}); bulk "
                    f"ingest of {rows} rows refused, retry shortly",
                    retry_after_ms=OVERLOAD_RETRY_MS,
                    tenant=tenant_name, reason="overload")
            bucket = tenant.bucket
            if bucket is not None:
                wait = bucket.try_take(rows)
                if wait > 0.0:
                    self._count_rejection(tenant, rows)
                    raise AdmissionError(
                        f"tenant {tenant_name!r} over its ingest rate "
                        f"({bucket.rate:g} rows/s); retry in "
                        f"{wait:.3f}s",
                        retry_after_ms=max(1, math.ceil(wait * 1000.0)),
                        tenant=tenant_name, reason="rate-limit")
            return "admit"

    def _count_rejection(self, tenant: Tenant, rows: int) -> None:
        tenant.batches_rejected += 1
        tenant.rows_rejected += rows
        self.batches_rejected += 1
        self.rows_rejected += rows

    def record_result(self, tenant_name: str, accepted: int, shed: int,
                      duplicate: int, nbytes: int) -> None:
        """Fold the engine's ack counts back into the tenant ledger."""
        with self._lock:
            tenant = self._tenant_locked(tenant_name)
            tenant.batches_admitted += 1
            tenant.rows_ingested += accepted
            tenant.bytes_ingested += nbytes
            tenant.rows_shed += shed
            tenant.duplicates += duplicate
            self.batches_admitted += 1
            self.rows_admitted += accepted
            self.rows_shed += shed

    # ------------------------------------------------------------------
    # surfaces
    # ------------------------------------------------------------------

    def tier(self) -> int:
        depth = self.depth_probe()
        if depth >= self.hard_depth:
            return 2
        if depth >= self.soft_depth:
            return 1
        return 0

    def tenants_rows(self):
        """Rows of the ``repro_tenants`` system view."""
        with self._lock:
            out = []
            for name in sorted(self._tenants):
                t = self._tenants[name]
                out.append((
                    name, t.sessions, t.weight, t.rate_limit, t.burst,
                    t.row_quota, t.byte_quota, t.rows_ingested,
                    t.bytes_ingested, t.batches_admitted,
                    t.batches_rejected, t.batches_shed, t.rows_rejected,
                    t.rows_shed, t.duplicates,
                ))
            return out

    def admission_rows(self):
        """The single summary row of ``repro_admission``."""
        depth = self.depth_probe()
        with self._lock:
            return [(
                self.enabled, depth, self.tier(), self.soft_depth,
                self.hard_depth, self.bulk_rows, len(self._tenants),
                self.batches_admitted, self.batches_rejected,
                self.batches_shed, self.rows_admitted,
                self.rows_rejected, self.rows_shed,
                self.dedup.duplicates, self.dedup.sender_count(),
            )]
