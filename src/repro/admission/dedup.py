"""Per-stream dedup windows: the memory behind idempotent ingest.

A client stamps each ingest batch with ``(sender_id, seq)``; the index
remembers, per ``(stream, sender)``, which sequence numbers have been
applied.  A replay — client retry after a lost ack, or the same batch
re-sent to a promoted standby — is recognised and skipped, so ingest is
accepted-exactly-once end to end.

The per-sender state is bounded: a high watermark plus a window of
recently seen sequence numbers above ``high - window``.  Anything at or
below the window floor is conservatively treated as already seen (a
sender that old is retrying something long since applied; rejecting a
duplicate twice is harmless, applying one twice is not).

Durability is the WAL's job: the engine appends one ``stream_dedup``
marker record per applied batch (see ``Database.ingest_batch``) and
:meth:`DedupIndex.restore_from_wal` rebuilds this index from those
markers at boot and at standby promotion.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: default count of in-flight sequence numbers remembered per sender
DEFAULT_WINDOW = 1024


class _SenderWindow:
    """Dedup state for one (stream, sender) pair."""

    __slots__ = ("high", "recent")

    def __init__(self):
        self.high = 0          # largest seq ever recorded
        self.recent = set()    # recorded seqs in (high - window, high]

    def seen(self, seq: int, window: int) -> bool:
        if seq > self.high:
            return False
        if seq > self.high - window:
            return seq in self.recent
        return True  # below the window floor: assume long since applied

    def record(self, seq: int, window: int) -> None:
        self.recent.add(seq)
        if seq > self.high:
            self.high = seq
        floor = self.high - window
        if floor > 0 and len(self.recent) > window:
            self.recent = {s for s in self.recent if s > floor}


class DedupIndex:
    """All sender windows of one database, keyed by (stream, sender)."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.window = int(window)
        self._senders: Dict[Tuple[str, str], _SenderWindow] = {}
        self.duplicates = 0    # batches recognised as replays

    def seen(self, stream: str, sender: str, seq: int) -> bool:
        state = self._senders.get((stream, sender))
        if state is None:
            return False
        if state.seen(int(seq), self.window):
            self.duplicates += 1
            return True
        return False

    def record(self, stream: str, sender: str, seq: int) -> None:
        state = self._senders.get((stream, sender))
        if state is None:
            state = self._senders[(stream, sender)] = _SenderWindow()
        state.record(int(seq), self.window)

    def forget_stream(self, stream: str) -> None:
        """Drop all sender state for a stream (DROP STREAM)."""
        for key in [k for k in self._senders if k[0] == stream]:
            del self._senders[key]

    def sender_count(self) -> int:
        return len(self._senders)

    def watermark(self, stream: str, sender: str) -> int:
        state = self._senders.get((stream, sender))
        return state.high if state is not None else 0

    def restore_from_wal(self, wal) -> int:
        """Rebuild sender watermarks from durable ``stream_dedup``
        markers; returns how many markers were applied.  Idempotent —
        safe to call again at promotion on a standby whose index was
        kept warm by the apply loop."""
        from repro.storage import wal as walrec
        applied = 0
        for record in wal.durable_records():
            if record.kind != walrec.STREAM_DEDUP or record.rid is None:
                continue
            sender, seq = record.rid[0], record.rid[1]
            self.record(record.table, str(sender), int(seq))
            applied += 1
        return applied
