"""Admission control: tenants, quotas, dedup, and fair scheduling.

See ``docs/SERVER.md`` ("Tenancy & admission control") for the operator
view.  The pieces:

- :class:`TokenBucket` — per-tenant ingest rate limiting;
- :class:`DedupIndex` — per-stream ``(sender, seq)`` windows behind
  idempotent ingest;
- :class:`WeightedFairQueue` — the engine executor's multi-lane queue
  (system lane strict-priority, tenant lanes stride-scheduled);
- :class:`AdmissionController` — the tenant registry and the
  admit/shed/refuse decision, wired into ``Session.handle_ingest``.
"""

from repro.admission.bucket import TokenBucket
from repro.admission.controller import (
    DEFAULT_TENANT,
    AdmissionController,
    Tenant,
)
from repro.admission.dedup import DEFAULT_WINDOW, DedupIndex
from repro.admission.scheduler import WeightedFairQueue

__all__ = [
    "AdmissionController",
    "DEFAULT_TENANT",
    "DEFAULT_WINDOW",
    "DedupIndex",
    "Tenant",
    "TokenBucket",
    "WeightedFairQueue",
]
