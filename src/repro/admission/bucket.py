"""Token buckets: the per-tenant ingest rate limiter.

The classic shape: a bucket holds up to ``burst`` tokens and refills at
``rate`` tokens per second; each admitted row spends one token.  The
long-run admission bound is therefore ``burst + rate * elapsed`` (plus
at most one batch of overdraft, see :meth:`TokenBucket.try_take`) — the
invariant the hypothesis property tests pin down.

Time comes from an injectable :class:`~repro.clock.Clock`, so tests
drive refill with :class:`~repro.clock.ManualClock` instead of sleeping.
"""

from __future__ import annotations

from repro.clock import Clock, SYSTEM_CLOCK


class TokenBucket:
    """A refillable token bucket over an injectable monotonic clock."""

    def __init__(self, rate: float, burst: float,
                 clock: Clock = SYSTEM_CLOCK):
        if rate <= 0:
            raise ValueError("token bucket rate must be > 0")
        if burst <= 0:
            raise ValueError("token bucket burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = self.burst
        self._last = clock.monotonic()
        self.admitted = 0     # tokens spent (rows admitted)
        self.rejected = 0     # try_take calls that came back throttled

    def configure(self, rate: float = None, burst: float = None) -> None:
        """Retune the bucket in place (SET option applied retroactively).

        The balance is clamped to the new burst so shrinking the bucket
        takes effect immediately, not after the surplus drains.
        """
        self._refill(self.clock.monotonic())
        if rate is not None:
            if rate <= 0:
                raise ValueError("token bucket rate must be > 0")
            self.rate = float(rate)
        if burst is not None:
            if burst <= 0:
                raise ValueError("token bucket burst must be > 0")
            self.burst = float(burst)
        self.tokens = min(self.tokens, self.burst)

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self._last = now

    def try_take(self, n: int) -> float:
        """Spend ``n`` tokens if available; returns the wait in seconds.

        ``0.0`` means admitted.  A positive return is how long until the
        deficit refills — the ``retry_after`` hint.  One wrinkle: a
        single batch larger than ``burst`` could never be admitted by
        the strict rule, so a *full* bucket admits any batch and goes
        into overdraft (negative balance); subsequent batches then wait
        out the debt.  The long-run rate stays bounded — the overdraft
        is repaid before anything else is admitted.
        """
        now = self.clock.monotonic()
        self._refill(now)
        if n <= self.tokens or self.tokens >= self.burst:
            self.tokens -= n
            self.admitted += n
            return 0.0
        self.rejected += 1
        return (n - self.tokens) / self.rate

    def available(self) -> float:
        """Current token balance (refilled to now); introspection only."""
        self._refill(self.clock.monotonic())
        return self.tokens
