"""Weighted fair queueing for the single-writer engine executor.

The engine thread serves jobs from many sessions; FIFO lets one tenant
with a hundred busy CQs starve another's one.  This queue gives each
tenant its own lane and serves lanes by stride scheduling: every lane
carries a virtual finish time, the lane with the smallest one is served
next, and serving a lane advances its clock by ``1 / weight`` — so a
weight-2 tenant gets twice the turns of a weight-1 tenant under
contention while an idle tenant costs nothing.

The *system lane* (jobs with no tenant: WAL shipping, replication acks,
shutdown flush, detach) has strict priority — it is drained before any
tenant lane is considered, so replication and recovery can never be
starved by client load.  This mirrors the tiered-shedding promise:
degrade tenants first, infrastructure never.

Thread-safe; the executor's worker blocks in :meth:`get`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional


class _Lane:
    __slots__ = ("jobs", "vtime", "weight", "served")

    def __init__(self, weight: float):
        self.jobs = deque()
        self.vtime = 0.0
        self.weight = max(float(weight), 1e-6)
        self.served = 0


class WeightedFairQueue:
    """A multi-lane job queue: strict-priority system lane + WFQ lanes."""

    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._system = deque()
        self._lanes: Dict[str, _Lane] = {}
        self._vclock = 0.0      # virtual time of the last served lane
        self._size = 0
        self._stopping = False

    def put(self, item) -> None:
        """Enqueue on the system lane (served before all tenant work)."""
        with self._ready:
            self._system.append(item)
            self._size += 1
            self._ready.notify()

    def put_fair(self, lane_key: Optional[str], weight: float,
                 item) -> None:
        """Enqueue on a tenant lane; ``None`` falls back to the system
        lane (untenanted session work behaves as before)."""
        if lane_key is None:
            self.put(item)
            return
        with self._ready:
            lane = self._lanes.get(lane_key)
            if lane is None:
                lane = self._lanes[lane_key] = _Lane(weight)
            else:
                lane.weight = max(float(weight), 1e-6)
            if not lane.jobs:
                # a lane waking from idle joins at the current virtual
                # time: it neither banks credit while idle nor pays for
                # service it never received
                lane.vtime = max(lane.vtime, self._vclock)
            lane.jobs.append(item)
            self._size += 1
            self._ready.notify()

    def close(self) -> None:
        """Signal end-of-input: :meth:`get` returns ``None`` once every
        queued job has been served (drain-then-stop, so a final flush
        submitted before shutdown still runs)."""
        with self._ready:
            self._stopping = True
            self._ready.notify_all()

    def get(self):
        """Next job — system lane first, then the tenant lane with the
        smallest virtual finish time.  ``None`` after :meth:`close` once
        drained."""
        with self._ready:
            while True:
                if self._system:
                    self._size -= 1
                    return self._system.popleft()
                lane = self._pick_lane()
                if lane is not None:
                    self._vclock = lane.vtime
                    lane.vtime += 1.0 / lane.weight
                    lane.served += 1
                    self._size -= 1
                    return lane.jobs.popleft()
                if self._stopping:
                    return None
                self._ready.wait()

    def _pick_lane(self) -> Optional[_Lane]:
        best = None
        for lane in self._lanes.values():
            if lane.jobs and (best is None or lane.vtime < best.vtime):
                best = lane
        return best

    def qsize(self) -> int:
        with self._lock:
            return self._size

    def lane_depths(self) -> Dict[str, int]:
        """Queued jobs per tenant lane (for the repro_admission view)."""
        with self._lock:
            out = {key: len(lane.jobs)
                   for key, lane in self._lanes.items() if lane.jobs}
            if self._system:
                out["(system)"] = len(self._system)
            return out

    def lane_served(self) -> Dict[str, int]:
        """Jobs served per tenant lane since startup (fairness tests)."""
        with self._lock:
            return {key: lane.served for key, lane in self._lanes.items()}
