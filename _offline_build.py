"""A minimal, stdlib-only PEP 517 build backend.

Why this exists: the reproduction environment is fully offline and has
no ``wheel`` package, so setuptools' PEP 660 editable path fails inside
``pip install -e .``.  Wheels are just zip files with a dist-info
directory, so this backend builds them directly:

- ``build_editable``: a wheel containing one ``.pth`` file pointing at
  ``src/`` (plus dist-info) — the classic editable install;
- ``build_wheel``: a wheel containing the ``src/repro`` tree;
- ``build_sdist``: a tarball of the repository sources.

No third-party imports, no network.  ``pyproject.toml`` selects it via
``backend-path``.
"""

import base64
import hashlib
import os
import tarfile
import zipfile

NAME = "repro"
VERSION = "1.0.0"
TAG = "py3-none-any"

_HERE = os.path.dirname(os.path.abspath(__file__))

METADATA = """\
Metadata-Version: 2.1
Name: {name}
Version: {version}
Summary: Continuous Analytics: a stream-relational database \
(reproduction of Franklin et al., CIDR 2009)
Requires-Python: >=3.9
""".format(name=NAME, version=VERSION)

WHEEL_METADATA = """\
Wheel-Version: 1.0
Generator: _offline_build
Root-Is-Purelib: true
Tag: {tag}
""".format(tag=TAG)


def _record_entry(path, data):
    digest = base64.urlsafe_b64encode(
        hashlib.sha256(data).digest()).rstrip(b"=").decode()
    return f"{path},sha256={digest},{len(data)}"


def _write_wheel(wheel_directory, files):
    """Write a wheel containing ``files`` ({archive path: bytes})."""
    dist_info = f"{NAME}-{VERSION}.dist-info"
    files = dict(files)
    files[f"{dist_info}/METADATA"] = METADATA.encode()
    files[f"{dist_info}/WHEEL"] = WHEEL_METADATA.encode()
    record_path = f"{dist_info}/RECORD"
    record_lines = [_record_entry(path, data)
                    for path, data in sorted(files.items())]
    record_lines.append(f"{record_path},,")
    files[record_path] = ("\n".join(record_lines) + "\n").encode()

    filename = f"{NAME}-{VERSION}-{TAG}.whl"
    target = os.path.join(wheel_directory, filename)
    with zipfile.ZipFile(target, "w", zipfile.ZIP_DEFLATED) as archive:
        for path, data in sorted(files.items()):
            archive.writestr(path, data)
    return filename


# -- PEP 517 hooks -----------------------------------------------------------


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def build_wheel(wheel_directory, config_settings=None,
                metadata_directory=None):
    package_root = os.path.join(_HERE, "src")
    files = {}
    for directory, _subdirs, names in os.walk(os.path.join(package_root,
                                                           NAME)):
        for name in names:
            if name.endswith(".pyc"):
                continue
            full = os.path.join(directory, name)
            rel = os.path.relpath(full, package_root).replace(os.sep, "/")
            with open(full, "rb") as f:
                files[rel] = f.read()
    return _write_wheel(wheel_directory, files)


def build_editable(wheel_directory, config_settings=None,
                   metadata_directory=None):
    src = os.path.join(_HERE, "src")
    files = {f"__editable__.{NAME}.pth": (src + "\n").encode()}
    return _write_wheel(wheel_directory, files)


def build_sdist(sdist_directory, config_settings=None):
    filename = f"{NAME}-{VERSION}.tar.gz"
    target = os.path.join(sdist_directory, filename)
    base = f"{NAME}-{VERSION}"
    include = ["src", "tests", "benchmarks", "examples", "docs",
               "pyproject.toml", "setup.py", "_offline_build.py",
               "README.md", "DESIGN.md", "EXPERIMENTS.md", "Makefile"]

    def keep(info):
        if "__pycache__" in info.name or info.name.endswith(".pyc"):
            return None
        return info

    with tarfile.open(target, "w:gz") as archive:
        for entry in include:
            full = os.path.join(_HERE, entry)
            if os.path.exists(full):
                archive.add(full, arcname=f"{base}/{entry}", filter=keep)
    return filename
