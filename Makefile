# Convenience targets for the Continuous Analytics reproduction.

PYTHON ?= python

.PHONY: install test bench chaos examples shell server smoke \
	failover-smoke dr-smoke obs-smoke admission-smoke eventtime-smoke \
	vectorized-smoke wal-smoke partition-smoke partition-bench \
	coverage clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# the chaos suite replays a fixed fault schedule (seed 2009); see
# docs/FAULTS.md.  The replication/restart files exercise the
# replication.ship, replication.apply and server.boot_recovery
# crashpoints; the admission file exercises admission.quota_check and
# admission.dedup_persist (refusal-not-corruption, torn-batch discard);
# the wal-segments file exercises wal.segment_roll, wal.compact,
# backup.snapshot and scrub.verify (crash-safe WAL lifecycle); the
# partition file exercises partition.route, partition.merge and
# partition.worker_crash (atomic refusal, pending-merge retry,
# restart-with-replay).
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py tests/test_faults.py tests/test_supervisor.py tests/test_replication.py tests/test_ha_restart.py tests/test_admission_chaos.py tests/test_eventtime_chaos.py tests/test_wal_segments.py tests/test_partition_chaos.py -q

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/security_monitoring.py
	$(PYTHON) examples/clickstream_dashboard.py
	$(PYTHON) examples/fault_tolerant_pipeline.py

shell:
	$(PYTHON) -m repro.cli

server:
	$(PYTHON) -m repro.server

# end-to-end check of the network layer: real subprocess, real socket
smoke:
	$(PYTHON) scripts/server_smoke.py

# high availability end to end: SIGKILL the primary mid-window, the
# standby auto-promotes, a subscribed client fails over gap-free
failover-smoke:
	$(PYTHON) scripts/failover_smoke.py

# disaster recovery end to end: online backup over the protocol,
# kill -9, restore + point-in-time recovery to a mid-stream LSN; the
# rebuilt CQ output must be identical to a never-crashed reference
dr-smoke:
	$(PYTHON) scripts/dr_smoke.py

# observability overhead gate: metrics + 1% tracing must stay within
# 5% of the bare engine on the E1 ingest+window workload (X4, small)
obs-smoke:
	$(PYTHON) benchmarks/bench_x4_obs.py

# overload isolation gate: a noisy tenant's burst flood must not
# degrade a well-behaved tenant's p99 delivery latency by 2x (X5)
admission-smoke:
	$(PYTHON) benchmarks/bench_x5_admission.py

# event-time overhead gate: watermark tracking on an ordered feed must
# stay within 10% of arrival-time windows on the E1 pipeline (X6)
eventtime-smoke:
	$(PYTHON) benchmarks/bench_x6_eventtime.py

# vectorized executor gate: the columnar batch path must be at least
# 3x the row-at-a-time iterator on the E1 ingest+window pipeline (X7)
vectorized-smoke:
	$(PYTHON) benchmarks/bench_x7_vectorized.py

# segmented-WAL overhead gate: rolling segments must stay within 5%
# of the single-file baseline on the E1 durable ingest pipeline (X8)
wal-smoke:
	$(PYTHON) benchmarks/bench_x8_wal.py

# partitioned execution end to end: real subprocess workers, SIGKILL
# one mid-window, restart-with-replay; CQ output must be bit-identical
# to the single engine
partition-smoke:
	$(PYTHON) scripts/partition_smoke.py

# partition throughput gate: 4 workers must reach 2x the single engine
# on E1 (X9); advisory-only on machines with fewer than 4 cores
partition-bench:
	$(PYTHON) benchmarks/bench_x9_partition.py

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis benchmarks/results
