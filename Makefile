# Convenience targets for the Continuous Analytics reproduction.

PYTHON ?= python

.PHONY: install test bench examples shell coverage clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/security_monitoring.py
	$(PYTHON) examples/clickstream_dashboard.py
	$(PYTHON) examples/fault_tolerant_pipeline.py

shell:
	$(PYTHON) -m repro.cli

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis benchmarks/results
