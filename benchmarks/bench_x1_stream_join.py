"""X1 (extension) — two-stream windowed joins vs staging through a table.

The paper's examples join a stream with a *table*; joining two streams
(impressions x clicks — the canonical CTR computation) is the natural
next capability.  Without engine support the workaround is to stage one
stream into a table through a channel and run a stream-table join — which
stores every staged event.  This bench measures both: the native
stream-stream join moves nothing through storage, the staging variant
pays write I/O proportional to the staged stream's volume.
"""

import time

from repro import Database
from repro.bench.harness import format_table
from repro.bench.metrics import measure
from repro.workloads import ZipfGenerator

MINUTE = 60.0
MINUTES = 10
ADS = 50


def workload(events_per_minute):
    """Interleaved impression and click feeds (clicks are ~10%)."""
    ads = ZipfGenerator(ADS, seed=3)
    impressions, clicks = [], []
    for minute in range(MINUTES):
        for i in range(events_per_minute):
            t = minute * MINUTE + i * (MINUTE / events_per_minute)
            ad = f"ad{ads.draw():03d}"
            impressions.append((ad, t))
            if i % 10 == 0:
                clicks.append((ad, t + 0.001))
    return impressions, clicks


JOIN_SQL = """
SELECT i.ad, count(*) pairs
FROM impressions <VISIBLE '1 minute'> i,
     clicks <VISIBLE '1 minute'> c
WHERE i.ad = c.ad
GROUP BY i.ad
"""


def native_join(events_per_minute):
    db = Database(buffer_pages=64)
    db.execute("CREATE STREAM impressions (ad varchar(20), "
               "ts timestamp CQTIME USER)")
    db.execute("CREATE STREAM clicks (ad varchar(20), "
               "ts timestamp CQTIME USER)")
    sub = db.subscribe(JOIN_SQL)
    impressions, clicks = workload(events_per_minute)
    with measure(db) as m:
        started = time.perf_counter()
        i = c = 0
        for minute in range(1, MINUTES + 1):
            horizon = minute * MINUTE
            while i < len(impressions) and impressions[i][1] < horizon:
                db.get_stream("impressions").insert(impressions[i])
                i += 1
            while c < len(clicks) and clicks[c][1] < horizon:
                db.get_stream("clicks").insert(clicks[c])
                c += 1
            db.advance_streams(horizon)
        db.storage.pool.flush()
        wall = time.perf_counter() - started
    totals = {}
    for window in sub.poll():
        for ad, pairs in window.rows:
            totals[ad] = totals.get(ad, 0) + pairs
    return m, wall, totals


def staged_join(events_per_minute):
    """The workaround: archive clicks into a table, stream-table join."""
    db = Database(buffer_pages=64)
    db.execute("CREATE STREAM impressions (ad varchar(20), "
               "ts timestamp CQTIME USER)")
    db.execute("CREATE STREAM clicks (ad varchar(20), "
               "ts timestamp CQTIME USER)")
    db.execute_script("""
        CREATE TABLE click_log (ad varchar(20), ts timestamp);
        CREATE CHANNEL click_ch FROM clicks INTO click_log APPEND;
    """)
    sub = db.subscribe("""
        SELECT i.ad, count(*) pairs
        FROM impressions <VISIBLE '1 minute'> i, click_log c
        WHERE i.ad = c.ad
          AND c.ts >= cq_open(*) AND c.ts < cq_close(*)
        GROUP BY i.ad
    """)
    impressions, clicks = workload(events_per_minute)
    with measure(db) as m:
        started = time.perf_counter()
        i = c = 0
        for minute in range(1, MINUTES + 1):
            horizon = minute * MINUTE
            while c < len(clicks) and clicks[c][1] < horizon:
                db.get_stream("clicks").insert(clicks[c])
                c += 1
            while i < len(impressions) and impressions[i][1] < horizon:
                db.get_stream("impressions").insert(impressions[i])
                i += 1
            db.advance_streams(horizon)
        db.storage.pool.flush()
        wall = time.perf_counter() - started
    totals = {}
    for window in sub.poll():
        for ad, pairs in window.rows:
            totals[ad] = totals.get(ad, 0) + pairs
    return m, wall, totals


def test_x1_stream_stream_join(benchmark, report):
    report.experiment_id = "X1_stream_join"
    rows = []
    for rate in (300, 1200):
        native_m, native_wall, native_totals = native_join(rate)
        staged_m, staged_wall, staged_totals = staged_join(rate)
        assert native_totals == staged_totals, "join semantics diverged"
        rows.append([
            rate * MINUTES,
            native_m.pages_written, round(native_m.sim_seconds, 4),
            round(native_wall, 3),
            staged_m.pages_written, round(staged_m.sim_seconds, 4),
            round(staged_wall, 3),
        ])
    text = format_table(
        ["impressions", "native pages written", "native sim s",
         "native wall s", "staged pages written", "staged sim s",
         "staged wall s"],
        rows,
        title="X1 (extension): native two-stream windowed join vs staging "
              "clicks through an archived table")
    print("\n" + text)
    report.add(text)

    # shape: the native join stores nothing; staging writes scale with
    # the staged stream's volume
    assert all(row[1] == 0 for row in rows)
    assert rows[1][4] > rows[0][4]

    benchmark.pedantic(lambda: native_join(300), rounds=2, iterations=1)
