"""E2 — Example 2's top-10 CQ: incremental processing efficiency.

Section 2.2's "Jellybean Processing" argument: computing metrics as the
beans fall into the jar costs a small, constant amount per bean.  This
bench drives the top-10-URLs CQ at increasing per-window event counts
and reports (a) per-event processing cost, (b) answer latency — the time
from window close to the answer being available (it is produced *at* the
close, so this is just the per-window evaluation time), and (c) the same
answer computed store-first (load + scan) for contrast.
"""

import time

from repro import Database
from repro.baselines import BatchWarehouse
from repro.bench.harness import format_table
from repro.workloads import ClickstreamGenerator

TOP10 = """
SELECT url, count(*) url_count
FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
GROUP by url ORDER by url_count desc LIMIT 10
"""

RATES = [50, 200, 800]  # events per second
MINUTES = 6


def continuous_run(rate):
    db = Database()
    db.execute("CREATE STREAM url_stream (url varchar(1024), "
               "atime timestamp CQTIME USER, client_ip varchar(50))")
    sub = db.subscribe(TOP10)
    gen = ClickstreamGenerator(n_urls=200, rate_per_second=rate, seed=5)
    events = gen.batch(rate * 60 * MINUTES)

    started = time.perf_counter()
    db.insert_stream("url_stream", events)
    db.advance_streams(events[-1][1] + 300.0)
    total_wall = time.perf_counter() - started

    windows = sub.poll()
    per_event_us = total_wall / len(events) * 1e6

    # answer latency: evaluate one representative window in isolation
    eval_started = time.perf_counter()
    db.insert_stream("url_stream", [("/page/00000",
                                     events[-1][1] + 301.0, "ip")])
    db.advance_streams(events[-1][1] + 400.0)
    answer_latency_ms = (time.perf_counter() - eval_started) * 1000 \
        / max(1, len(sub.poll()))
    return per_event_us, answer_latency_ms, len(windows), len(events)


def batch_equivalent(rate):
    """The same top-10, store-first: load a minute of data, then query."""
    wh = BatchWarehouse(buffer_pages=64)
    wh.create_raw_table("CREATE TABLE url_log (url varchar(1024), "
                        "atime timestamp, client_ip varchar(50))")
    gen = ClickstreamGenerator(n_urls=200, rate_per_second=rate, seed=5)
    wh.ingest("url_log", gen.batch(rate * 60 * 5))
    started = time.perf_counter()
    wh.report("SELECT url, count(*) c FROM url_log GROUP BY url "
              "ORDER BY c DESC LIMIT 10")
    return (time.perf_counter() - started) * 1000


def test_e2_topk_per_event_cost(benchmark, report):
    report.experiment_id = "E2_topk_latency"
    rows = []
    per_event_costs = []
    for rate in RATES:
        per_event_us, latency_ms, n_windows, n_events = continuous_run(rate)
        batch_ms = batch_equivalent(rate)
        per_event_costs.append(per_event_us)
        rows.append([rate, n_events, round(per_event_us, 1),
                     round(latency_ms, 2), n_windows, round(batch_ms, 1)])
    text = format_table(
        ["events/s", "total events", "CQ cost/event (us)",
         "answer latency (ms)", "windows", "batch re-query (ms)"],
        rows,
        title="E2: Example 2's top-10 CQ — per-event cost stays flat as "
              "rate grows; answers are ready at window close")
    print("\n" + text)
    report.add(text)

    # shape: per-event cost roughly flat (no super-linear blowup)
    assert max(per_event_costs) < min(per_event_costs) * 5
    # answers at close beat re-running the batch query
    assert rows[-1][3] < rows[-1][5]

    def run_small():
        return continuous_run(50)
    benchmark.pedantic(run_small, rounds=2, iterations=1)
