"""E4 / A1 — shared processing of many CQs (Section 2.2, refs [4, 12]).

"processing multiple continuous queries in a shared manner ... enables
redundant work to be avoided across the set of active queries."  We
attach K aggregate CQs — same metric, different window extents — to one
stream, with slice sharing ON (one per-tuple aggregation, merged slices
per CQ) and OFF (each CQ buffers and rescans independently), and report
per-event work and wall time as K grows.  A1 is the ablation: the same
table with sharing toggled.
"""

import time

from repro import Database
from repro.bench.harness import format_table
from repro.workloads import ClickstreamGenerator

K_SWEEP = [1, 2, 4, 8, 16]
EVENTS = 12_000
RATE = 100.0  # events/second -> 2 minutes of data

WINDOW_MINUTES = [1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 30, 40, 50, 60, 90]


def cq_sql(minutes):
    return (f"SELECT url, count(*) c FROM url_stream "
            f"<VISIBLE '{minutes} minutes' ADVANCE '1 minute'> GROUP BY url")


def run(k, share):
    db = Database(share_slices=share)
    db.execute("CREATE STREAM url_stream (url varchar(1024), "
               "atime timestamp CQTIME USER, client_ip varchar(50))")
    subs = [db.subscribe(cq_sql(WINDOW_MINUTES[i])) for i in range(k)]
    gen = ClickstreamGenerator(n_urls=50, rate_per_second=RATE, seed=4)
    events = gen.batch(EVENTS)

    started = time.perf_counter()
    db.insert_stream("url_stream", events)
    db.advance_streams(events[-1][1] + 60.0)
    wall = time.perf_counter() - started

    if share:
        aggregators = db.runtime.aggregators()
        per_tuple_work = sum(a.stats.agg_adds for a in aggregators)
        extra = sum(a.stats.state_merges for a in aggregators)
    else:
        # generic path: each CQ rescans its buffered window per close
        per_tuple_work = sum(s.stats.rows_scanned for s in subs)
        extra = 0
    outputs = [
        sorted((w.close_time, tuple(sorted(w.rows))) for w in s.poll())
        for s in subs
    ]
    return wall, per_tuple_work, extra, outputs


def test_e4_shared_vs_unshared(benchmark, report):
    report.experiment_id = "E4_sharing"
    rows = []
    shared_work, unshared_work = [], []
    for k in K_SWEEP:
        wall_s, work_s, merges, out_s = run(k, share=True)
        wall_u, work_u, _zero, out_u = run(k, share=False)
        assert out_s == out_u, f"shared path changed results at K={k}"
        shared_work.append(work_s)
        unshared_work.append(work_u)
        rows.append([
            k, work_u, work_s, merges,
            round(work_u / work_s, 1),
            round(wall_u, 3), round(wall_s, 3),
        ])
    text = format_table(
        ["K CQs", "unshared row-touches", "shared agg-adds",
         "shared merges", "work ratio", "unshared wall s", "shared wall s"],
        rows,
        title=f"E4/A1: {EVENTS} events, K CQs over the same stream with "
              "different windows — shared slices do the per-tuple work once")
    print("\n" + text)
    report.add(text)

    # shape: unshared per-tuple work grows with K; shared stays constant
    assert unshared_work[-1] > unshared_work[0] * (K_SWEEP[-1] / 2)
    assert shared_work[-1] == shared_work[0]
    assert unshared_work[-1] > shared_work[-1] * 5

    benchmark.pedantic(lambda: run(4, share=True), rounds=2, iterations=1)
