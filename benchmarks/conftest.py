"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module reproduces one experiment from DESIGN.md's index
(F1, EX1–EX5, E1–E9) and prints the rows/series the paper's claims imply.
Run with::

    pytest benchmarks/ --benchmark-only -s

Reports are also written to ``benchmarks/results/<id>.txt``.
"""

import pytest


def pytest_configure(config):
    # benchmarks print their tables; -s is recommended but not required
    pass


@pytest.fixture
def report():
    """Collects lines and writes them to benchmarks/results on teardown."""
    from repro.bench.harness import write_report

    class Collector:
        def __init__(self):
            self.chunks = []
            self.experiment_id = None

        def add(self, text: str):
            self.chunks.append(text)

        def flush(self):
            if self.experiment_id:
                write_report(self.experiment_id, "\n\n".join(self.chunks))

    collector = Collector()
    yield collector
    collector.flush()
