"""E8 — recovery: operator checkpointing vs rebuild-from-active-tables.

Section 4: checkpointing "is hard to implement correctly and requires
every operator to be taught how to recover its state"; with active
tables one can "instead implement a strategy that rebuilds runtime state
from disk automatically".  Correctness is equal (both resume exactly);
the measurable trade is steady-state overhead — checkpoints pay WAL
writes on every window — versus recovery-time work.  We run the same
crash scenario under both strategies and report both sides of the trade.
"""

import time

from repro import Database
from repro.bench.harness import format_table
from repro.sql import parse_statement
from repro.streaming.cq import ContinuousQuery
from repro.streaming.recovery import (
    CheckpointManager,
    recover_from_active_table,
)

CQ_SQL = ("SELECT url, count(*) scnt, cq_close(*) FROM clicks "
          "<VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url")
MINUTES = 20
CRASH_AT = 12
PER_MINUTE = 200


def make_db():
    db = Database(stream_retention=3600.0, buffer_pages=128)
    db.execute("CREATE STREAM clicks (url varchar(100), "
               "ts timestamp CQTIME USER, ip varchar(20))")
    db.execute("CREATE TABLE archive (url varchar(100), scnt integer, "
               "stime timestamp)")
    return db


def events(minute_from, minute_to):
    out = []
    for minute in range(minute_from, minute_to):
        for i in range(PER_MINUTE):
            out.append((f"/p{i % 7}", minute * 60.0 + 0.1 + i * 0.25, "x"))
    return out


def archive_sink(db):
    table = db.get_table("archive")

    def sink(rows, open_time, close_time):
        txn = db.txn_manager.begin()
        for row in rows:
            table.insert(txn, row)
        txn.commit()
    return sink


def scenario(strategy):
    db = make_db()
    cq = db.runtime.create_cq(parse_statement(CQ_SQL), name="rollup")
    cq.add_sink(archive_sink(db))
    if strategy == "checkpoint":
        CheckpointManager(cq, db.storage.wal, every_windows=1)

    steady_before = db.io_snapshot()
    db.insert_stream("clicks", events(0, CRASH_AT))
    db.advance_streams(CRASH_AT * 60.0)
    steady_io = db.io_snapshot() - steady_before

    # crash: runtime state is gone; tables/WAL/stream tail survive
    db.runtime.stop_cq(cq)

    recovery_before = db.io_snapshot()
    started = time.perf_counter()
    new_cq = ContinuousQuery("rollup", parse_statement(CQ_SQL),
                             db.catalog, db.txn_manager)
    new_cq.add_sink(archive_sink(db))
    if strategy == "checkpoint":
        CheckpointManager.recover(new_cq, db.storage.wal)
    else:
        recover_from_active_table(new_cq, db.get_table("archive"),
                                  db.txn_manager, "stime")
    new_cq.attach()
    recovery_wall = time.perf_counter() - started
    recovery_io = db.io_snapshot() - recovery_before

    db.insert_stream("clicks", events(CRASH_AT, MINUTES))
    db.advance_streams(MINUTES * 60.0)
    archive = sorted(db.table_rows("archive"))
    return steady_io, recovery_io, recovery_wall, archive


def reference_archive():
    db = make_db()
    cq = db.runtime.create_cq(parse_statement(CQ_SQL), name="rollup")
    cq.add_sink(archive_sink(db))
    db.insert_stream("clicks", events(0, MINUTES))
    db.advance_streams(MINUTES * 60.0)
    return sorted(db.table_rows("archive"))


def test_e8_recovery_strategies(benchmark, report):
    report.experiment_id = "E8_recovery"
    reference = reference_archive()

    ckpt_steady, ckpt_rec, ckpt_wall, ckpt_archive = scenario("checkpoint")
    at_steady, at_rec, at_wall, at_archive = scenario("active_table")

    # both strategies recover to exactly the uninterrupted archive
    assert ckpt_archive == reference
    assert at_archive == reference

    disk = Database().disk  # for the cost model conversion only
    rows = [
        ["checkpoint every window",
         ckpt_steady.pages_written,
         round(disk.elapsed_seconds(ckpt_steady), 4),
         ckpt_rec.pages_read, round(ckpt_wall * 1e3, 2), "yes"],
        ["rebuild from active table (paper)",
         at_steady.pages_written,
         round(disk.elapsed_seconds(at_steady), 4),
         at_rec.pages_read, round(at_wall * 1e3, 2), "yes"],
    ]
    text = format_table(
        ["strategy", "steady-state pages written", "steady-state sim s",
         "recovery pages read", "recovery wall ms", "output exact"],
        rows,
        title=f"E8: crash at minute {CRASH_AT} of {MINUTES} — recovery "
              "correctness and the steady-state-overhead trade (Section 4)")
    print("\n" + text)
    report.add(text)

    # shape: the active-table strategy pays ~nothing during normal
    # operation (only the channel's own writes), checkpointing pays
    # per-window WAL flushes
    assert ckpt_steady.pages_written > at_steady.pages_written + CRASH_AT - 2

    benchmark.pedantic(lambda: scenario("active_table"),
                       rounds=1, iterations=1)
