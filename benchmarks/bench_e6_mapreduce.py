"""E6 — MapReduce vs the stream-relational system (Section 5).

"Such technologies are ... inherently batch-oriented and are much more
resource intensive than the Jellybean processing that a stream-relational
system can provide."  Same rollup (count per URL), three ways: the mini
MapReduce engine (read input + write/read shuffle + write output), the
same MR job *with* a combiner, and a CQ that aggregates while the data
flies by (only the answer is ever written).  We report bytes moved
through storage and simulated seconds.
"""

from repro import Database
from repro.baselines import MiniMapReduce, rollup_job
from repro.baselines.mapreduce import MapReduceJob
from repro.bench.harness import format_table
from repro.bench.metrics import measure
from repro.storage.page import value_bytes
from repro.workloads import ClickstreamGenerator

EVENTS = 60_000
RATE = 1000.0


def events():
    gen = ClickstreamGenerator(n_urls=100, rate_per_second=RATE, seed=8)
    return gen.batch(EVENTS)


def mapreduce_run(with_combiner):
    mr = MiniMapReduce(num_partitions=4)
    base = rollup_job(lambda row: row[0])
    job = base if with_combiner else MapReduceJob(
        base.mapper, base.reducer, None)
    result = mr.run(job, events())
    moved = result.bytes_read + 2 * result.bytes_shuffled + result.bytes_written
    return result, moved


def cq_run():
    db = Database(buffer_pages=64)
    db.execute("CREATE STREAM url_stream (url varchar(1024), "
               "atime timestamp CQTIME USER, client_ip varchar(50))")
    db.execute_script("""
        CREATE STREAM counts AS
            SELECT url, count(*) c, cq_close(*)
            FROM url_stream <VISIBLE '1 minute'> GROUP BY url;
        CREATE TABLE counts_archive (url varchar(1024), c bigint,
                                     stime timestamp);
        CREATE CHANNEL counts_ch FROM counts INTO counts_archive APPEND;
    """)
    data = events()
    with measure(db, "cq") as m:
        db.insert_stream("url_stream", data)
        db.advance_streams(data[-1][1] + 60.0)
        db.storage.pool.flush()  # the answer is durably written
    answer = db.query("SELECT url, sum(c) FROM counts_archive GROUP BY url")
    bytes_written = sum(
        sum(value_bytes(v) for v in row) + 8
        for row in db.table_rows("counts_archive"))
    return m, answer, bytes_written


def test_e6_mapreduce_vs_cq(benchmark, report):
    report.experiment_id = "E6_mapreduce"
    plain, plain_moved = mapreduce_run(with_combiner=False)
    combined, combined_moved = mapreduce_run(with_combiner=True)
    cq_measure, cq_answer, cq_bytes = cq_run()

    # correctness: all three agree on the rollup
    mr_rollup = dict(plain.rows)
    cq_rollup = {url: total for url, total in cq_answer.rows}
    assert mr_rollup == cq_rollup
    assert dict(combined.rows) == mr_rollup

    rows = [
        ["MapReduce (no combiner)", plain.bytes_read, plain.bytes_shuffled,
         plain_moved, round(plain.sim_seconds, 3)],
        ["MapReduce (combiner)", combined.bytes_read,
         combined.bytes_shuffled, combined_moved,
         round(combined.sim_seconds, 3)],
        ["stream-relational CQ", 0, 0, cq_bytes,
         round(cq_measure.sim_seconds, 3)],
    ]
    text = format_table(
        ["system", "input bytes read", "shuffle bytes",
         "total bytes through storage", "sim s"],
        rows,
        title=f"E6: the same per-URL rollup over {EVENTS} events — "
              "batch MapReduce materialises between stages; the CQ writes "
              "only the answer")
    print("\n" + text)
    report.add(text)

    # shape: CQ moves orders of magnitude fewer bytes and finishes faster
    assert cq_bytes < plain_moved / 50
    assert cq_measure.sim_seconds < plain.sim_seconds
    # combiner helps MR but does not close the storage-traffic gap
    assert combined_moved < plain_moved
    assert cq_bytes < combined_moved / 5

    benchmark.pedantic(lambda: mapreduce_run(True), rounds=2, iterations=1)
