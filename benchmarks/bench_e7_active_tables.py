"""E7 / A2 — reporting queries on active tables; indexes help further.

Section 3.3: the reporting query over an active table "will run extremely
fast, as the computation has already been done.  And because Active
Tables are simply SQL tables, indexes can be defined over them to further
improve query performance."  We populate an active table through a
channel, then time point and range reports (a) against the raw events
(store-first), (b) against the active table unindexed, (c) against the
active table with a B+tree (the A2 ablation).
"""

from repro import Database
from repro.bench.harness import format_table
from repro.bench.metrics import measure
from repro.workloads import ClickstreamGenerator

EVENTS = 40_000
RATE = 50.0  # ~13 minutes of data -> a dozen archived windows
N_URLS = 200


def build():
    db = Database(buffer_pages=128)
    db.execute("CREATE STREAM url_stream (url varchar(1024), "
               "atime timestamp CQTIME USER, client_ip varchar(50))")
    db.execute_script("""
        CREATE STREAM per_minute AS
            SELECT url, count(*) c, cq_close(*)
            FROM url_stream <VISIBLE '1 minute'> GROUP BY url;
        CREATE TABLE url_minutes (url varchar(1024), c bigint,
                                  stime timestamp);
        CREATE CHANNEL mins_ch FROM per_minute INTO url_minutes APPEND;
    """)
    # the raw log too, so the store-first comparison has something to scan
    db.execute("CREATE TABLE url_log (url varchar(1024), atime timestamp, "
               "client_ip varchar(50))")
    gen = ClickstreamGenerator(n_urls=N_URLS, rate_per_second=RATE, seed=9)
    events = gen.batch(EVENTS)
    db.insert_stream("url_stream", events)
    db.insert_table("url_log", events)
    db.advance_streams(events[-1][1] + 60.0)
    db.storage.pool.flush()
    return db


def timed_query(db, sql):
    db.drop_caches()
    with measure(db) as m:
        result = db.query(sql)
    return m, result


POINT_RAW = ("SELECT count(*) FROM url_log WHERE url = '/page/00000'")
POINT_ACTIVE = ("SELECT sum(c) FROM url_minutes WHERE url = '/page/00000'")
RANGE_RAW = ("SELECT count(*) FROM url_log WHERE atime < 60")
RANGE_ACTIVE = ("SELECT sum(c) FROM url_minutes WHERE stime = 60")


def test_e7_active_table_reports(benchmark, report):
    report.experiment_id = "E7_active_tables"
    db = build()

    raw_point, r1 = timed_query(db, POINT_RAW)
    active_point, r2 = timed_query(db, POINT_ACTIVE)
    assert r1.scalar() == r2.scalar()  # same answer, precomputed

    raw_range, r3 = timed_query(db, RANGE_RAW)
    active_range, r4 = timed_query(db, RANGE_ACTIVE)
    assert r3.scalar() == r4.scalar()

    # A2: add indexes over the active table and repeat
    db.execute("CREATE INDEX um_url ON url_minutes (url)")
    db.execute("CREATE INDEX um_stime ON url_minutes (stime)")
    assert "IndexScan" in db.explain(POINT_ACTIVE)
    indexed_point, r5 = timed_query(db, POINT_ACTIVE)
    indexed_range, r6 = timed_query(db, RANGE_ACTIVE)
    assert r5.scalar() == r2.scalar()
    assert r6.scalar() == r4.scalar()

    rows = [
        ["point: raw scan", raw_point.pages_read,
         round(raw_point.sim_seconds, 4), round(raw_point.wall_seconds * 1e3, 2)],
        ["point: active table", active_point.pages_read,
         round(active_point.sim_seconds, 4),
         round(active_point.wall_seconds * 1e3, 2)],
        ["point: active + index (A2)", indexed_point.pages_read,
         round(indexed_point.sim_seconds, 4),
         round(indexed_point.wall_seconds * 1e3, 2)],
        ["range: raw scan", raw_range.pages_read,
         round(raw_range.sim_seconds, 4), round(raw_range.wall_seconds * 1e3, 2)],
        ["range: active table", active_range.pages_read,
         round(active_range.sim_seconds, 4),
         round(active_range.wall_seconds * 1e3, 2)],
        ["range: active + index (A2)", indexed_range.pages_read,
         round(indexed_range.sim_seconds, 4),
         round(indexed_range.wall_seconds * 1e3, 2)],
    ]
    text = format_table(
        ["report query", "pages read (cold)", "sim s", "wall ms"], rows,
        title=f"E7/A2: reporting over {EVENTS} raw events — raw scan vs "
              "active table vs indexed active table")
    print("\n" + text)
    report.add(text)

    # shapes: active table beats the raw scan; the index reads fewer
    # pages and answers faster in wall clock.  (On the seek-bound 2009
    # disk model, a handful of random index reads can cost more
    # *simulated* seconds than a short sequential scan — the classic
    # index-vs-scan crossover — so the sim column is reported, not
    # asserted, for the index rows.)
    assert active_point.pages_read < raw_point.pages_read / 5
    assert indexed_point.pages_read < active_point.pages_read
    assert indexed_point.wall_seconds < raw_point.wall_seconds
    assert active_range.pages_read < raw_range.pages_read / 5

    benchmark.pedantic(lambda: timed_query(db, POINT_ACTIVE),
                       rounds=5, iterations=1)
