"""EX1–EX5 — the paper's Examples 1 through 5, run as one pipeline.

Demonstrates Section 3 end to end: stream DDL (Ex. 1), a top-10 CQ
(Ex. 2), a derived stream (Ex. 3), a channel feeding an active table
(Ex. 4), and the week-over-week stream-table join (Ex. 5).  Prints what
each stage produces and times a full pipeline pass.
"""

from repro import Database
from repro.bench.harness import format_table

MINUTE = 60.0
WEEK = 7 * 86400.0

DDL = """
CREATE STREAM url_stream (
    url varchar(1024), atime timestamp CQTIME USER, client_ip varchar(50));
CREATE STREAM urls_now as
    SELECT url, count(*) as scnt, cq_close(*)
    FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP by url;
CREATE TABLE urls_archive (url varchar(1024), scnt integer,
                           stime timestamp);
CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND;
"""

TOP10 = """
SELECT url, count(*) url_count
FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
GROUP by url ORDER by url_count desc LIMIT 10
"""

WEEK_OVER_WEEK = """
select c.scnt, h.scnt, c.stime
from (select sum(scnt) as scnt, cq_close(*) as stime
      from urls_now <slices 1 windows>) c, urls_archive h
where c.stime - '1 week'::interval = h.stime
"""


def drive(db, week_offset, counts):
    events = []
    base = week_offset
    for i, (url, n) in enumerate(sorted(counts.items())):
        for j in range(n):
            events.append((url, base + 1 + i * 0.01 + j * 0.0001, "10.0.0.1"))
    db.insert_stream("url_stream", events)


def run_pipeline():
    db = Database()
    db.execute_script(DDL)
    top10 = db.execute(TOP10)
    wow = db.execute(WEEK_OVER_WEEK)

    drive(db, 0.0, {"/home": 8, "/cart": 5, "/login": 3})
    db.advance_streams(MINUTE)
    db.get_stream("url_stream").advance_to(WEEK)
    drive(db, WEEK, {"/home": 12, "/cart": 2})
    db.advance_streams(WEEK + MINUTE)
    return db, top10, wow


def test_paper_examples_pipeline(benchmark, report):
    report.experiment_id = "EX1-5_examples"
    db, top10, wow = run_pipeline()

    windows = top10.poll()
    first = windows[0]
    text = format_table(
        ["url", "url_count"], [list(r) for r in first.rows],
        title=f"Example 2 (top-10 CQ), window closing at t={first.close_time:.0f}s")
    print("\n" + text)
    report.add(text)
    assert first.rows[0] == ("/home", 8)

    archive = db.table_rows("urls_archive")
    text = format_table(
        ["url", "scnt", "stime"], [list(r) for r in archive[:8]],
        title=f"Examples 3+4 (derived stream -> channel -> active table): "
              f"{len(archive)} archived rows, first 8")
    print("\n" + text)
    report.add(text)
    assert ("/home", 8, 60.0) in archive

    matches = [row for w in wow.poll() for row in w.rows]
    text = format_table(
        ["current scnt", "scnt a week ago", "stime"],
        [list(r) for r in matches],
        title="Example 5 (week-over-week stream-table join)")
    print("\n" + text)
    report.add(text)
    # current window (week 2, minute 1) has 14 clicks; one week earlier
    # each archived row for close 60.0 joins
    assert (14, 8 + 5 + 3, WEEK + MINUTE) not in matches  # per-row join
    assert any(cur == 14 and hist in (8, 5, 3) for cur, hist, _t in matches)

    benchmark(run_pipeline)
