"""X5 — admission control under overload: a rate-limited noisy tenant
must not ruin a well-behaved tenant's delivery latency.

Two tenants share one server.  Tenant ``good`` streams small batches
into its own stream and subscribes to it, so every tuple comes back as
a push frame; the server stamps each push when the engine enqueues it
and observes the stamp when the frame hits the socket, giving a
per-tenant delivery-latency histogram (``server.delivery_seconds.good``
in ``repro_metrics``).  Tenant ``noisy`` bursts oversized batches at
the same server from a background thread, far over its configured
ingest rate, with client-side retry disabled — exactly the traffic
admission control exists to refuse *before* it costs engine time.

The bench runs the good tenant's workload twice — once alone (the
baseline), once under the noisy tenant's flood — and gates on the
good tenant's p99 delivery latency degrading less than 2x (plus a
small absolute floor so a sub-millisecond baseline doesn't turn
scheduler jitter into a failure).

Run standalone (``make admission-smoke``)::

    PYTHONPATH=src python benchmarks/bench_x5_admission.py
"""

import sys
import threading
import time

from repro import client
from repro.bench.harness import format_table
from repro.errors import AdmissionError, TruvisoError
from repro.server import ServerThread

GOOD_DDL = "CREATE STREAM good_s (v integer, ts timestamp CQTIME USER)"
NOISY_DDL = "CREATE STREAM noisy_s (v integer, ts timestamp CQTIME USER)"

N_BATCHES = 150        # good-tenant batches per phase
BATCH_ROWS = 10
FLOOD_ROWS = 256       # every noisy batch is far over its burst
NOISY_RATE = 200.0     # rows/second the noisy tenant is entitled to

GATE_RATIO = 2.0
GATE_FLOOR_S = 0.005   # absolute headroom for sub-ms baselines


def flood(host, port, stop):
    """The noisy tenant: oversized batches, no backoff, no manners."""
    conn = client.connect(host, port, tenant="noisy")
    at = 0.0
    sent = 0
    try:
        while not stop.is_set():
            at += 1.0
            rows = [(i, at) for i in range(FLOOD_ROWS)]
            try:
                conn.ingest("noisy_s", rows, retry=False)
                sent += 1
            except AdmissionError:
                pass  # refused at the door: the whole point
            except TruvisoError:
                break
    finally:
        try:
            conn.close()
        except Exception:
            pass
    return sent


def run_phase(flooded):
    """One server, one good-tenant run; returns (p99_seconds, stats)."""
    with ServerThread() as st:
        good = client.connect(st.host, st.port, tenant="good")
        good.execute(GOOD_DDL)
        good.execute(NOISY_DDL)
        good.execute("SET admission = on")
        st.db.admission.configure_tenant(
            "noisy", rate_limit=NOISY_RATE, burst=NOISY_RATE)
        st.db.admission.configure_tenant("good", weight=2.0)
        good.subscribe("good_s")

        stop = threading.Event()
        flooder = None
        if flooded:
            flooder = threading.Thread(
                target=flood, args=(st.host, st.port, stop), daemon=True)
            flooder.start()

        at = 0.0
        for i in range(N_BATCHES):
            at += 0.05
            good.ingest("good_s",
                        [(v, at) for v in range(BATCH_ROWS)])
        # let the last pushes reach the socket before scraping
        deadline = time.monotonic() + 10.0
        expected = N_BATCHES * BATCH_ROWS
        count = 0
        while time.monotonic() < deadline and count < expected:
            row = good.query(
                "SELECT count, p99 FROM repro_metrics "
                "WHERE name = 'server.delivery_seconds.good'").rows
            count = row[0][0] if row else 0
            time.sleep(0.05)
        stop.set()
        if flooder is not None:
            flooder.join(timeout=10.0)

        (count, p99) = good.query(
            "SELECT count, p99 FROM repro_metrics "
            "WHERE name = 'server.delivery_seconds.good'").rows[0]
        assert count and count > 0, "no delivery samples were recorded"
        admission = good.query(
            "SELECT batches_admitted, batches_rejected, batches_shed "
            "FROM repro_admission").rows[0]
        tenants = good.query(
            "SELECT name, rows_ingested, batches_rejected, batches_shed "
            "FROM repro_tenants").rows
        good.close()
        return float(p99), {"samples": count, "admission": admission,
                            "tenants": tenants}


def build_report(base_p99, flood_p99, flood_stats):
    ratio = flood_p99 / base_p99 if base_p99 > 0 else float("inf")
    rows = [
        ["baseline", round(base_p99 * 1000, 3), "-"],
        ["flooded", round(flood_p99 * 1000, 3), f"{ratio:.2f}x"],
    ]
    text = format_table(
        ["phase", "good-tenant p99 delivery ms", "vs baseline"],
        rows,
        title="X5: good-tenant delivery latency under a noisy tenant's "
              f"burst flood (gate: < {GATE_RATIO:.0f}x + "
              f"{GATE_FLOOR_S * 1000:.0f}ms)")
    admitted, rejected, shed = flood_stats["admission"]
    text += (f"\nflooded-phase admission: {admitted} admitted, "
             f"{rejected} rejected, {shed} shed")
    for name, ingested, brej, bshed in flood_stats["tenants"]:
        text += (f"\n  tenant {name}: {ingested} rows in, "
                 f"{brej} batches rejected, {bshed} shed")
    return text, ratio


def passes_gate(base_p99, flood_p99):
    return flood_p99 < GATE_RATIO * base_p99 + GATE_FLOOR_S


def test_x5_admission_overload(report):
    report.experiment_id = "X5_admission"
    base_p99, _ = run_phase(flooded=False)
    flood_p99, flood_stats = run_phase(flooded=True)
    text, _ratio = build_report(base_p99, flood_p99, flood_stats)
    print("\n" + text)
    report.add(text)
    # the noisy tenant must actually have been throttled for the
    # comparison to mean anything
    noisy = [t for t in flood_stats["tenants"] if t[0] == "noisy"]
    assert noisy and noisy[0][2] > 0, "the flood was never rejected"
    assert passes_gate(base_p99, flood_p99), (
        f"good-tenant p99 degraded {flood_p99 / base_p99:.2f}x "
        f"({base_p99 * 1000:.3f}ms -> {flood_p99 * 1000:.3f}ms)")


def main():
    """Standalone smoke entry point (``make admission-smoke``)."""
    base_p99, _ = run_phase(flooded=False)
    flood_p99, flood_stats = run_phase(flooded=True)
    text, ratio = build_report(base_p99, flood_p99, flood_stats)
    print(text)
    noisy = [t for t in flood_stats["tenants"] if t[0] == "noisy"]
    if not noisy or noisy[0][2] == 0:
        print("FAIL: the flood was never rejected — admission control "
              "did not engage", file=sys.stderr)
        return 1
    if not passes_gate(base_p99, flood_p99):
        print(f"FAIL: good-tenant p99 degraded {ratio:.2f}x "
              f"(gate {GATE_RATIO:.0f}x + {GATE_FLOOR_S * 1000:.0f}ms)",
              file=sys.stderr)
        return 1
    print(f"OK: good-tenant p99 degraded {ratio:.2f}x under flood "
          f"(gate {GATE_RATIO:.0f}x + {GATE_FLOOR_S * 1000:.0f}ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
