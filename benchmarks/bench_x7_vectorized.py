"""X7 — vectorized columnar executor: the ingest+window hot path.

The paper's workloads (Section 5) are dominated by one loop: stream
tuples arrive, pass a filter, and fold into windowed group-by
aggregates.  The vectorized executor rewrites exactly that loop —
columnar batches, numpy expression kernels, per-slice aggregate
partials merged at window close — while leaving the relational
semantics untouched (tests/test_vectorized_parity.py pins them
bit-for-bit).

This bench drives the E1 security workload through a filtered windowed
rollup CQ under two configurations:

  iterator  Database(vectorize=False): row-at-a-time Volcano plan
  batch     Database(vectorize=True):  the default vectorized path

Rounds interleave the two configurations (order rotating) and the
speedup is the *median of per-round ratios*, which cancels machine
drift far better than comparing global bests.  The gate asserts the
batch path is at least 3x the iterator path, and that EXPLAIN ANALYZE
actually reports ``mode=batch`` operators with live row counts — the
speedup must come from the vectorized path, not from measuring a plan
that silently fell back.
"""

import sys
import time

from repro import Database
from repro.bench.harness import format_table
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL

CQ_SQL = """
SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
       avg(bytes_sent) AS avg_bytes, max(bytes_sent) AS peak
FROM security_events <VISIBLE '5 seconds' ADVANCE '1 second'>
WHERE action = 'block'
GROUP BY severity
"""

CONFIGS = [
    ("iterator", {"vectorize": False}),
    ("batch", {"vectorize": True}),
]

GATE_X = 3.0


def run_once(events, db_kwargs, chunk=8_000):
    """One full ingest+window pass; returns (wall seconds, windows)."""
    db = Database(buffer_pages=64, **db_kwargs)
    db.execute(SECURITY_STREAM_DDL)
    sub = db.subscribe(CQ_SQL.strip())
    started = time.perf_counter()
    for i in range(0, len(events), chunk):
        db.insert_stream("security_events", events[i:i + chunk])
    db.advance_streams(events[-1][0] + 60.0)
    wall = time.perf_counter() - started
    windows = sub.poll()
    assert windows and any(w.rows for w in windows), "pipeline produced nothing"
    if db_kwargs.get("vectorize"):
        text = db.explain("EXPLAIN ANALYZE " + CQ_SQL.strip())
        assert "[mode=batch]" in text, text
        assert "never executed" not in text, text
    return wall, len(windows)


def measure(n_events, repeats=5):
    gen = SecurityEventGenerator(rate_per_second=2000.0, seed=7)
    events = gen.batch(n_events)
    walls = {label: [] for label, _ in CONFIGS}
    windows = {}
    for round_no in range(repeats):
        shift = round_no % len(CONFIGS)
        order = CONFIGS[shift:] + CONFIGS[:shift]
        for label, kwargs in order:
            wall, n_windows = run_once(events, kwargs)
            walls[label].append(wall)
            windows[label] = n_windows
    # both plans must have produced the same window sequence
    assert windows["iterator"] == windows["batch"], windows
    return walls


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def build_report(n_events, walls):
    ratios = [it / b for it, b in zip(walls["iterator"], walls["batch"])]
    speedup = _median(ratios)
    rows = []
    for label, _ in CONFIGS:
        wall = _median(walls[label])
        rows.append([label, n_events, round(wall * 1000, 2),
                     round(n_events / wall, 0),
                     "-" if label == "iterator" else f"{speedup:.2f}x"])
    text = format_table(
        ["config", "events", "median wall ms", "events/s",
         "median paired speedup"],
        rows,
        title="X7: vectorized executor on the E1 ingest+window pipeline "
              f"(gate: batch >= {GATE_X:.0f}x iterator)")
    return text, speedup


def test_x7_vectorized_speedup(report):
    report.experiment_id = "X7_vectorized"
    n_events = 60_000
    walls = measure(n_events, repeats=5)
    text, speedup = build_report(n_events, walls)
    print("\n" + text)
    report.add(text)
    assert speedup >= GATE_X, (
        f"vectorized speedup {speedup:.2f}x below gate {GATE_X}x")


def main():
    """Standalone smoke entry point (``make vectorized-smoke``): smaller
    run, same gate, nonzero exit on failure."""
    n_events = 30_000
    walls = measure(n_events, repeats=3)
    text, speedup = build_report(n_events, walls)
    print(text)
    if speedup < GATE_X:
        print(f"FAIL: vectorized speedup {speedup:.2f}x "
              f"< gate {GATE_X}x", file=sys.stderr)
        return 1
    print(f"OK: vectorized speedup {speedup:.2f}x >= gate {GATE_X}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
