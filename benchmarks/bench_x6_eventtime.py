"""X6 — event-time overhead: watermark tracking must not tax the
ordered hot path.

The event-time subsystem (``repro.eventtime``) adds per-tuple work to
a watermarked stream: a monotone max over the designated timestamp
column, a late/on-time classification against the current watermark,
and a heartbeat broadcast whenever the watermark advances.  For the
common case — traffic that is already ordered, no late rows, the
default ``drop`` policy — that must stay cheap: the paper's position
is that event-time correctness is a property you turn on, not a
pipeline you pay for.

This bench drives the same E1 security workload as X4 (ingest through
a windowed rollup CQ into an archival channel) under three
configurations:

  arrival    plain stream, arrival-time windows (the X4 pipeline)
  eventtime  ``WATERMARK '5 seconds'`` stream, ``EMIT ON WATERMARK``,
             same ordered input — the delta is pure bookkeeping
  shuffled   the same event-time pipeline fed the same events
             reordered within the watermark bound
             (:class:`~repro.workloads.OutOfOrderEvents`)

The gate asserts ordered event-time stays within 10% of arrival-time;
the shuffled row is informative (it also pays buffering for genuinely
out-of-order rows, which arrival-time windows would simply mis-assign).
"""

import sys
import time

from repro import Database
from repro.bench.harness import format_table
from repro.workloads import OutOfOrderEvents, SecurityEventGenerator

GATE_PCT = 10.0

# the X4 stream, parameterised on the time-semantics clause
STREAM_DDL = """
CREATE STREAM security_events (
    etime timestamp CQTIME USER,
    src_ip varchar(50),
    dst_ip varchar(50),
    dst_port integer,
    action varchar(10),
    severity integer,
    bytes_sent bigint
) {clause}
"""

CONTINUOUS_DDL = """
CREATE STREAM blocked_rollup AS
    SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
           cq_close(*)
    FROM security_events <VISIBLE '5 seconds'>
    WHERE action = 'block'
    GROUP BY severity{emit};
CREATE TABLE blocked_archive (severity integer,
    hits bigint, bytes bigint, stime timestamp);
CREATE CHANNEL blocked_channel FROM blocked_rollup INTO blocked_archive APPEND;
"""

#: (label, stream clause, CQ emit clause, shuffle?) per configuration
CONFIGS = [
    ("arrival", "", "", False),
    ("eventtime", "WATERMARK '5 seconds'", " EMIT ON WATERMARK", False),
    ("shuffled", "WATERMARK '5 seconds'", " EMIT ON WATERMARK", True),
]


def run_once(n_events, clause, emit, shuffle, chunk=2_000):
    """One full ingest+window pass; returns wall seconds."""
    db = Database(buffer_pages=64, observability=False)
    db.execute(STREAM_DDL.format(clause=clause))
    db.execute_script(CONTINUOUS_DDL.format(emit=emit))
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=1)
    events = gen.batch(n_events)
    if shuffle:
        # reorder arrivals within the watermark bound: every row stays
        # on time, but the stream sees genuine disorder
        ooo = OutOfOrderEvents(bound=4.0, seed=7)
        events = [events[i] for i in sorted(
            range(len(events)),
            key=lambda i: events[i][0] + ooo.delay())]
    started = time.perf_counter()
    for i in range(0, len(events), chunk):
        db.insert_stream("security_events", events[i:i + chunk])
    db.advance_streams(events[-1][0] + 60.0)
    wall = time.perf_counter() - started
    # sanity: the pipeline actually ran end to end
    archived = db.query("SELECT count(*) FROM blocked_archive").scalar()
    assert archived and archived > 0
    return wall


def measure(n_events, repeats=7):
    """Paired per-round measurement, as in X4: every round runs both
    configurations back to back (order rotating) and the overhead is
    the median of per-round ratios against that round's baseline."""
    walls = {label: [] for label, _, _, _ in CONFIGS}
    for round_no in range(repeats):
        shift = round_no % len(CONFIGS)
        order = CONFIGS[shift:] + CONFIGS[:shift]
        round_walls = {}
        for label, clause, emit, shuffle in order:
            round_walls[label] = run_once(n_events, clause, emit, shuffle)
        for label, wall in round_walls.items():
            walls[label].append(wall)
    return walls


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def build_report(n_events, walls):
    rows = []
    overheads = {}
    for label, _, _, _ in CONFIGS:
        ratios = [w / base
                  for w, base in zip(walls[label], walls["arrival"])]
        overhead = (_median(ratios) - 1.0) * 100.0
        overheads[label] = overhead
        wall = _median(walls[label])
        rows.append([label, n_events, round(wall * 1000, 2),
                     round(n_events / wall, 0),
                     "-" if label == "arrival" else f"{overhead:+.2f}%"])
    text = format_table(
        ["config", "events", "median wall ms", "events/s",
         "median paired overhead"],
        rows,
        title="X6: event-time overhead on the E1 ingest+window pipeline "
              f"(gate: within {GATE_PCT:.0f}% of arrival-time)")
    return text, overheads


def test_x6_eventtime_overhead(report):
    report.experiment_id = "X6_eventtime"
    n_events = 40_000
    walls = measure(n_events, repeats=5)
    text, overheads = build_report(n_events, walls)
    print("\n" + text)
    report.add(text)
    assert overheads["eventtime"] < GATE_PCT, (
        f"event-time windows cost {overheads['eventtime']:.2f}% "
        f"(gate {GATE_PCT}%)")


def main():
    """Standalone smoke entry point (``make eventtime-smoke``): smaller
    run, same gate, nonzero exit on failure."""
    n_events = 15_000
    walls = measure(n_events, repeats=3)
    text, overheads = build_report(n_events, walls)
    print(text)
    if overheads["eventtime"] >= GATE_PCT:
        print(f"FAIL: event-time overhead {overheads['eventtime']:.2f}% "
              f">= gate {GATE_PCT}%", file=sys.stderr)
        return 1
    print(f"OK: event-time overhead {overheads['eventtime']:.2f}% "
          f"< gate {GATE_PCT}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
