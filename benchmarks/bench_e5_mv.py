"""E5 — materialized views vs channels/active tables (Section 5).

"MVs ... are refreshed in batch mode and therefore may be out of date at
the time of the query ... when the update starts, the whole batch is
processed."  We maintain the same per-key rollup three ways — full
batch-refresh MV, incremental batch-refresh MV, and a continuous channel
into an active table — under the same arrival stream, and report refresh
cost and answer staleness for each refresh period.
"""

from repro import Database
from repro.baselines import BatchRefreshMV
from repro.bench.harness import format_table
from repro.bench.metrics import measure
from repro.workloads import ClickstreamGenerator

MINUTE = 60.0
TOTAL_MINUTES = 30
RATE = 30.0  # events per second
REFRESH_PERIODS = [5, 15]  # minutes


def mv_run(mode, period_minutes):
    """Batch world: events land in a base table; a timer refreshes the MV."""
    db = Database(buffer_pages=64)
    db.execute("CREATE TABLE url_log (url varchar(1024), atime timestamp, "
               "client_ip varchar(50))")
    mv = BatchRefreshMV(db, "url_counts", "url_log", ["url"],
                        [("count", None)], "atime", mode)
    gen = ClickstreamGenerator(n_urls=40, rate_per_second=RATE, seed=6)
    staleness_samples = []
    now = 0.0
    for minute in range(1, TOTAL_MINUTES + 1):
        now = minute * MINUTE
        db.insert_table("url_log", gen.batch(int(RATE * MINUTE)))
        if minute % period_minutes == 0:
            mv.refresh(up_to_time=now)
        # a dashboard query lands every minute: how stale is its answer?
        staleness_samples.append(mv.staleness(now))
    finite = [s for s in staleness_samples if s != float("inf")]
    avg_staleness = sum(finite) / len(finite) if finite else float("inf")
    return (mv.total_cost.sim_seconds, mv.total_cost.rows_processed,
            avg_staleness, max(finite) if finite else float("inf"))


def channel_run():
    """Stream-relational world: a channel keeps the active table current."""
    db = Database(buffer_pages=64)
    db.execute("CREATE STREAM url_stream (url varchar(1024), "
               "atime timestamp CQTIME USER, client_ip varchar(50))")
    db.execute_script("""
        CREATE STREAM url_counts_now AS
            SELECT url, count(*) c, cq_close(*)
            FROM url_stream <VISIBLE '1 minute'> GROUP BY url;
        CREATE TABLE url_counts (url varchar(1024), c bigint,
                                 stime timestamp);
        CREATE CHANNEL url_counts_ch FROM url_counts_now INTO url_counts APPEND;
    """)
    gen = ClickstreamGenerator(n_urls=40, rate_per_second=RATE, seed=6)
    staleness_samples = []
    with measure(db, "maintenance") as m:
        for minute in range(1, TOTAL_MINUTES + 1):
            now = minute * MINUTE
            db.insert_stream("url_stream", gen.batch(int(RATE * MINUTE)))
            db.advance_streams(now)
            channel = db.catalog.get_channel("url_counts_ch")
            staleness_samples.append(now - channel.stats.last_close)
    rows_processed = db.get_stream("url_stream").tuples_in
    avg = sum(staleness_samples) / len(staleness_samples)
    return m.sim_seconds, rows_processed, avg, max(staleness_samples)


def test_e5_mv_vs_active_table(benchmark, report):
    report.experiment_id = "E5_mv"
    rows = []
    results = {}
    for period in REFRESH_PERIODS:
        for mode in ("full", "incremental"):
            sim, processed, avg_stale, max_stale = mv_run(mode, period)
            results[(mode, period)] = (sim, processed, avg_stale)
            rows.append([f"MV {mode}, refresh {period}min",
                         round(sim, 3), processed,
                         round(avg_stale, 1), round(max_stale, 1)])
    chan_sim, chan_rows, chan_avg, chan_max = channel_run()
    rows.append(["channel -> active table (continuous)",
                 round(chan_sim, 3), chan_rows,
                 round(chan_avg, 1), round(chan_max, 1)])

    text = format_table(
        ["maintenance strategy", "total sim s", "rows processed",
         "avg staleness s", "max staleness s"],
        rows,
        title=f"E5: maintaining a per-URL rollup for {TOTAL_MINUTES} min of "
              f"arrivals — batch-refresh MVs vs a continuous channel")
    print("\n" + text)
    report.add(text)

    # shapes from Section 5:
    # 1. full refresh reprocesses the whole batch every time; incremental
    #    touches only the delta (though it still scans the unindexed base
    #    table, so its disk cost barely improves — the paper's "disk
    #    operations ... take significant time even before processing")
    assert results[("full", 5)][1] > results[("incremental", 5)][1] * 2
    assert results[("full", 5)][0] >= results[("incremental", 5)][0]
    # 2. longer refresh period => staler answers
    assert results[("full", 15)][2] > results[("full", 5)][2] * 2
    # 3. the channel is never staler than one window advance
    assert chan_max <= MINUTE
    # 4. the channel is fresher than every MV configuration and far
    #    cheaper than any batch refresh schedule
    assert all(chan_avg < stale for _s, _p, stale in results.values())
    assert all(chan_sim < sim / 10 for sim, _p, _s in results.values())

    benchmark.pedantic(channel_run, rounds=1, iterations=1)
