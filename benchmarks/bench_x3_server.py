"""X3 — the loopback tax: network service vs embedded engine.

The paper's product shipped as a server (TruCQ fronting PostgreSQL);
our reproduction embeds the engine.  ``repro.server`` restores the
client/server deployment shape, and this experiment measures what that
costs on the E1 security workload:

1. **Bulk ingest.**  Micro-batched framed ingest over a loopback TCP
   socket vs embedded ``insert_many`` of the same rows, same batch
   size.  The acceptance bar is <= 3x: JSON framing, two scheduler
   crossings (event loop -> engine thread -> back) and the socket must
   not swamp the engine work.
2. **Subscription fan-out.**  One derived-stream CQ, several
   subscriber connections; measures how long a burst takes to reach
   every subscriber as pushed windows, end to end.

Printed table: rows/s each side, the ratio, and per-subscriber window
delivery latency.
"""

import time

from repro import Database
from repro.bench.harness import format_table
from repro.client import connect
from repro.server import ServerThread
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL

ROLLUP_DDL = """
CREATE STREAM blocked_rollup AS
    SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
           cq_close(*)
    FROM security_events <VISIBLE '1 minute'>
    WHERE action = 'block'
    GROUP BY severity
"""

N_EVENTS = 20_000
BATCH = 2_000
N_SUBSCRIBERS = 6
FANOUT_EVENTS = 5_000
MAX_RATIO = 3.0


def _batches(events):
    for start in range(0, len(events), BATCH):
        yield events[start:start + BATCH]


def embedded_ingest(events):
    db = Database()
    db.execute(SECURITY_STREAM_DDL)
    stream = db.get_stream("security_events")
    started = time.perf_counter()
    accepted = 0
    for chunk in _batches(events):
        accepted += stream.insert_many(chunk)
    wall = time.perf_counter() - started
    assert accepted == len(events)
    return wall


def server_ingest(events):
    with ServerThread() as server:
        with connect(server.host, server.port) as conn:
            conn.execute(SECURITY_STREAM_DDL)
            started = time.perf_counter()
            accepted = 0
            for chunk in _batches(events):
                accepted += conn.ingest("security_events", chunk)
            wall = time.perf_counter() - started
            assert accepted == len(events)
    return wall


def fanout(events):
    """Returns (ingest_wall, [per-subscriber delivery wall])."""
    with ServerThread() as server:
        feeder = connect(server.host, server.port)
        feeder.execute(SECURITY_STREAM_DDL)
        feeder.execute(ROLLUP_DDL)
        subscribers = [connect(server.host, server.port)
                       for _ in range(N_SUBSCRIBERS)]
        try:
            subs = [c.subscribe("blocked_rollup") for c in subscribers]
            last_time = events[-1][0]
            n_windows = int(last_time // 60.0) + 1
            started = time.perf_counter()
            for chunk in _batches(events):
                feeder.ingest("security_events", chunk)
            feeder.advance(last_time + 60.0)
            ingest_wall = time.perf_counter() - started
            walls = []
            for sub in subs:
                got = []
                while len(got) < n_windows:
                    got.extend(sub.wait_windows(1, timeout=10.0))
                walls.append(time.perf_counter() - started)
            # every subscriber saw the identical window sequence
            return ingest_wall, walls, n_windows
        finally:
            for c in subscribers:
                c.close()
            feeder.close()


def test_x3_server_loopback_tax(benchmark, report):
    report.experiment_id = "X3_server"
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=1)
    events = gen.batch(N_EVENTS)

    # warm both paths once (imports, allocator), then measure
    embedded_ingest(events[:BATCH])
    server_ingest(events[:BATCH])
    emb_wall = min(embedded_ingest(events) for _ in range(3))
    srv_wall = min(server_ingest(events) for _ in range(3))
    ratio = srv_wall / emb_wall

    rows = [
        ["embedded insert_many", N_EVENTS, BATCH,
         round(emb_wall * 1000, 1),
         round(N_EVENTS / emb_wall), "1.0"],
        ["loopback framed ingest", N_EVENTS, BATCH,
         round(srv_wall * 1000, 1),
         round(N_EVENTS / srv_wall), f"{ratio:.2f}"],
    ]
    text = format_table(
        ["path", "events", "batch", "wall ms", "rows/s", "x embedded"],
        rows,
        title="X3a: micro-batched bulk ingest, E1 security workload "
              f"(bar: <= {MAX_RATIO:.0f}x embedded)")
    print("\n" + text)
    report.add(text)

    fan_events = gen.batch(FANOUT_EVENTS)
    ingest_wall, walls, n_windows = fanout(fan_events)
    fan_rows = [[i + 1, n_windows, round(w * 1000, 1)]
                for i, w in enumerate(walls)]
    fan_text = format_table(
        ["subscriber", "windows received", "all delivered by (ms)"],
        fan_rows,
        title=f"X3b: fan-out of one CQ to {N_SUBSCRIBERS} subscribers "
              f"({FANOUT_EVENTS} events, ingest {ingest_wall * 1000:.1f} ms)")
    print("\n" + fan_text)
    report.add(fan_text)

    assert ratio <= MAX_RATIO, (
        f"loopback ingest is {ratio:.2f}x embedded (bar {MAX_RATIO}x)")
    assert len(walls) == N_SUBSCRIBERS

    benchmark.pedantic(lambda: server_ingest(events[:BATCH]),
                       rounds=3, iterations=1)
