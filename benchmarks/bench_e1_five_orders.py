"""E1 — the Section 4 anecdote: "a batch-oriented query taking over 20
minutes ... was produced in milliseconds ... 5 orders of magnitude".

Mechanism under test: the batch pipeline pays to store raw events and to
re-scan them for every report; the continuous pipeline computes the
answer while the data flies by, so a report is a lookup in a small
active table.  Batch cost therefore scales with raw volume while the
continuous report cost stays flat — the measured ratio grows linearly
with data size, and extrapolating the fitted line to the paper's
enterprise scale reproduces the ~10^5 claim.

Printed table: per raw-event-count N, the simulated seconds for one
batch report (cold), for one active-table report (cold), the measured
ratio, plus the same comparison in wall-clock.  A final line extrapolates
to one day at 10k events/s (864M events, a mid-size 2009 network feed).
"""

import time

from repro import Database
from repro.baselines import BatchWarehouse
from repro.bench.harness import format_table
from repro.bench.metrics import measure
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL, SECURITY_TABLE_DDL

#: the security-reporting rollup (same logical KPI both sides): blocked
#: traffic by severity — a bounded, known-in-advance metric (Section 1.4)
BATCH_REPORT = """
SELECT severity, count(*), sum(bytes_sent)
FROM security_events_raw
WHERE action = 'block'
GROUP BY severity
"""

CONTINUOUS_DDL = """
CREATE STREAM blocked_rollup AS
    SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
           cq_close(*)
    FROM security_events <VISIBLE '1 minute'>
    WHERE action = 'block'
    GROUP BY severity;
CREATE TABLE blocked_archive (severity integer,
    hits bigint, bytes bigint, stime timestamp);
CREATE CHANNEL blocked_channel FROM blocked_rollup INTO blocked_archive APPEND;
"""

ACTIVE_REPORT = """
SELECT severity, sum(hits), sum(bytes)
FROM blocked_archive
GROUP BY severity
"""

SWEEP = [5_000, 20_000, 80_000]
PAPER_SCALE = 864_000_000  # one day at 10k events/s


def batch_side(n_events):
    wh = BatchWarehouse(buffer_pages=64)
    wh.create_raw_table(SECURITY_TABLE_DDL)
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=1)
    wh.ingest("security_events_raw", gen.batch(n_events))
    started = time.perf_counter()
    _result, cost = wh.report(BATCH_REPORT, cold_cache=True)
    wall = time.perf_counter() - started
    return cost.sim_seconds, wall, cost.io.pages_read


def continuous_side(n_events):
    db = Database(buffer_pages=64)
    db.execute(SECURITY_STREAM_DDL)
    db.execute_script(CONTINUOUS_DDL)
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=1)
    events = gen.batch(n_events)
    db.insert_stream("security_events", events)
    db.advance_streams(events[-1][0] + 60.0)
    db.drop_caches()  # the report comes later: cold cache for fairness
    with measure(db, "active report") as m:
        started = time.perf_counter()
        result = db.query(ACTIVE_REPORT)
        wall = time.perf_counter() - started
    return m.sim_seconds, wall, m.io.pages_read, len(result.rows)


def test_e1_five_orders_of_magnitude(benchmark, report):
    report.experiment_id = "E1_five_orders"
    rows = []
    ratios = []
    for n in SWEEP:
        batch_sim, batch_wall, batch_pages = batch_side(n)
        cont_sim, cont_wall, cont_pages, n_groups = continuous_side(n)
        cont_sim = max(cont_sim, 1e-4)  # floor: one hot-cache lookup
        ratio = batch_sim / cont_sim
        ratios.append((n, ratio))
        rows.append([n, batch_pages, round(batch_sim, 4), cont_pages,
                     round(cont_sim, 4), round(ratio, 1),
                     round(batch_wall * 1000, 1), round(cont_wall * 1000, 2)])

    # linear extrapolation of the batch side (cost ∝ N); the continuous
    # side is flat in N, so the ratio extrapolates linearly too
    (n_small, r_small), (n_big, r_big) = ratios[0], ratios[-1]
    slope = (r_big - r_small) / (n_big - n_small)
    projected = r_small + slope * (PAPER_SCALE - n_small)
    rows.append([PAPER_SCALE, "-", "-", "-", "-",
                 f"{projected:.2e} (extrapolated)", "-", "-"])

    text = format_table(
        ["raw events N", "batch pages read", "batch sim s",
         "active pages", "active sim s", "ratio (batch/active)",
         "batch wall ms", "active wall ms"],
        rows,
        title="E1: store-first-query-later report vs continuous analytics "
              "(Section 4 anecdote: 20+ min -> ms, ~5 orders of magnitude)")
    print("\n" + text)
    report.add(text)

    # shape assertions: continuous wins, gap grows with N, extrapolation
    # reaches the paper's orders-of-magnitude claim
    assert all(r > 1 for _n, r in ratios)
    assert ratios[-1][1] > ratios[0][1] * 3
    assert projected > 1e4

    benchmark.pedantic(lambda: continuous_side(2_000), rounds=3, iterations=1)
