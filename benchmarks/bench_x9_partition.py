"""X9 — partitioned parallel execution: N workers vs one engine.

The network-effect framing of the paper makes single-node throughput
the binding constraint: every shared window and every new subscriber
multiplies the work one process must absorb.  The partition subsystem
(docs/PARTITION.md) splits the E1 security pipeline by a declared
``PARTITION BY dst_ip`` key across real worker subprocesses — each
running the unmodified engine on its shard — with the coordinator
merging mergeable window partials at every boundary.

This bench drives the same E1 ingest+window rollup under two
configurations:

  single       one Database, the unpartitioned hot path
  partitioned  PartitionedEngine(partitions=4, transport="process")

Rounds interleave the configurations (order rotating) and the speedup
is the *median of per-round ratios*.  The gate asserts the partitioned
run is at least 2x the single engine — but only where the hardware can
possibly deliver it: with fewer than 4 CPU cores the workers timeshare
one core and the wire overhead is pure loss, so the run reports an
advisory ratio and exits cleanly instead of failing the machine it
happens to land on.  Output equivalence is asserted in both modes —
the merged windows must account for exactly the same events.
"""

import os
import sys
import time

from repro import Database
from repro.bench.harness import format_table
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL

PARTITIONS = 4
GATE_X = 2.0

PARTITIONED_DDL = (SECURITY_STREAM_DDL.strip().rstrip(")")
                   + ") PARTITION BY dst_ip")

CQ_SQL = """
SELECT dst_ip, count(*) AS hits, sum(bytes_sent) AS bytes,
       max(bytes_sent) AS peak
FROM security_events <VISIBLE '5 seconds' ADVANCE '1 second'>
GROUP BY dst_ip
""".strip().replace("\n", " ")


def _drain(sub):
    windows = sub.poll()
    hits = sum(row[1] for w in windows for row in w.rows)
    return len(windows), hits


def run_single(events, chunk):
    db = Database(buffer_pages=64)
    db.execute(SECURITY_STREAM_DDL)
    sub = db.subscribe(CQ_SQL)
    started = time.perf_counter()
    for i in range(0, len(events), chunk):
        db.insert_stream("security_events", events[i:i + chunk])
    db.advance_streams(events[-1][0] + 60.0)
    wall = time.perf_counter() - started
    n_windows, hits = _drain(sub)
    db.close()
    return wall, n_windows, hits


def run_partitioned(events, chunk, transport="process"):
    from repro.partition import PartitionedEngine

    eng = PartitionedEngine(partitions=PARTITIONS, transport=transport)
    try:
        eng.execute(PARTITIONED_DDL)
        sub = eng.execute(CQ_SQL)
        started = time.perf_counter()
        for i in range(0, len(events), chunk):
            eng.ingest("security_events", events[i:i + chunk])
        eng.advance(events[-1][0] + 60.0)
        wall = time.perf_counter() - started
        n_windows, hits = _drain(sub)
        return wall, n_windows, hits
    finally:
        eng.close()


def measure(n_events, repeats=3, chunk=4_000, transport="process"):
    gen = SecurityEventGenerator(rate_per_second=2000.0, seed=7)
    events = gen.batch(n_events)
    configs = [
        ("single", lambda: run_single(events, chunk)),
        ("partitioned", lambda: run_partitioned(events, chunk, transport)),
    ]
    walls = {label: [] for label, _ in configs}
    accounted = {}
    for round_no in range(repeats):
        shift = round_no % len(configs)
        order = configs[shift:] + configs[:shift]
        for label, runner in order:
            wall, n_windows, hits = runner()
            walls[label].append(wall)
            accounted[label] = (n_windows, hits)
    # the merged output must account for exactly the same events
    # (overlapping windows count each event once per window it is
    # visible in, so equality is checked across configs, not absolute)
    assert accounted["single"] == accounted["partitioned"], accounted
    assert accounted["single"][1] >= n_events, accounted
    return walls


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def build_report(n_events, walls):
    ratios = [s / p for s, p in
              zip(walls["single"], walls["partitioned"])]
    speedup = _median(ratios)
    rows = []
    for label in ("single", "partitioned"):
        wall = _median(walls[label])
        rows.append([label, n_events, round(wall * 1000, 2),
                     round(n_events / wall, 0),
                     "-" if label == "single" else f"{speedup:.2f}x"])
    text = format_table(
        ["config", "events", "median wall ms", "events/s",
         "median paired speedup"],
        rows,
        title=f"X9: {PARTITIONS} partition workers on the E1 "
              f"ingest+window pipeline (gate: >= {GATE_X:.0f}x single, "
              f"{os.cpu_count()} cores)")
    return text, speedup


def test_x9_partition_speedup(report):
    import pytest

    report.experiment_id = "X9_partition"
    if (os.cpu_count() or 1) < PARTITIONS:
        pytest.skip(f"{os.cpu_count()} CPU cores: {PARTITIONS} workers "
                    "timeshare one core, the 2x gate is unmeetable "
                    "by construction")
    n_events = 60_000
    walls = measure(n_events, repeats=3)
    text, speedup = build_report(n_events, walls)
    print("\n" + text)
    report.add(text)
    assert speedup >= GATE_X, (
        f"partitioned speedup {speedup:.2f}x below gate {GATE_X}x")


def main():
    """Standalone entry point (``make partition-bench``): smaller run;
    the gate only binds when the hardware has a core per worker."""
    gated = (os.cpu_count() or 1) >= PARTITIONS
    n_events = 30_000 if gated else 10_000
    walls = measure(n_events, repeats=3 if gated else 1)
    text, speedup = build_report(n_events, walls)
    print(text)
    if not gated:
        print(f"ADVISORY: {os.cpu_count()} CPU cores < {PARTITIONS} "
              f"workers; measured {speedup:.2f}x, gate not applied "
              "(output equivalence still asserted)")
        return 0
    if speedup < GATE_X:
        print(f"FAIL: partitioned speedup {speedup:.2f}x "
              f"< gate {GATE_X}x", file=sys.stderr)
        return 1
    print(f"OK: partitioned speedup {speedup:.2f}x >= gate {GATE_X}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
