"""E9 — window consistency (Section 4).

Two guarantees are measured:

1. *Window-consistent table reads*: a CQ joining a table sees table
   updates only at window boundaries — never a mix of old and new
   dimension values inside one window's output.  We update the dimension
   row mid-window many times and count mixed windows (must be zero),
   versus a deliberately broken per-tuple-refresh variant that exhibits
   the anomaly.

2. *Atomic window publication*: a channel applies each window's result
   in one transaction, so a concurrent reporting query never observes a
   partially-written window in the active table.  We compare against a
   broken channel that commits row by row and count partial observations.
"""

from repro import Database
from repro.bench.harness import format_table
from repro.streaming.channels import Channel

MINUTE = 60.0


# ---------------------------------------------------------------------------
# part 1: mixed-version join outputs
# ---------------------------------------------------------------------------


def mixed_version_run(consistent: bool, rounds: int = 30):
    """Each round, the CQ's per-window plan reads the dimension table
    twice (it is joined twice) while a concurrent writer keeps bumping
    the row's version.  Under window consistency both reads use the
    snapshot pinned at the window boundary, so the two joined versions
    always agree; a per-operator READ-COMMITTED engine (the broken
    variant) takes a fresh snapshot per read and emits windows in which
    ``d1.version <> d2.version`` — a join against two different states
    of the same table in one answer."""
    db = Database()
    db.execute("CREATE STREAM hits (k varchar(10), ts timestamp CQTIME USER)")
    db.execute("CREATE TABLE dim (k varchar(10), version integer)")
    db.insert_table("dim", [("a", 0)])
    sub = db.subscribe(
        "SELECT d1.version v1, d2.version v2, count(*) "
        "FROM hits <VISIBLE '1 minute'> h, dim d1, dim d2 "
        "WHERE h.k = d1.k AND h.k = d2.k GROUP BY d1.version, d2.version")

    # the racing writer: commits a version bump right before every read
    # of the dimension table (simulating a concurrent update workload)
    table = db.get_table("dim")
    original_scan = table.scan
    state = {"version": 0}

    def racing_scan(snapshot, manager, own=None):
        state["version"] += 1
        txn = db.txn_manager.begin()
        for rid, version in list(table.heap.scan(table._pool)):
            if version.xmax is None:
                table.update_version(txn, rid, version,
                                     ("a", state["version"]))
        txn.commit()
        if consistent:
            use = snapshot          # pinned at the window boundary
        else:
            use = db.txn_manager.take_snapshot()  # leaky: per-read
        return original_scan(use, manager, own)

    table.scan = racing_scan

    mixed = 0
    for round_no in range(rounds):
        base = round_no * MINUTE
        db.insert_stream("hits", [("a", base + 10.0)])
        db.advance_streams(base + MINUTE)
        for window in sub.poll():
            if any(v1 != v2 for v1, v2, _c in window.rows):
                mixed += 1
    table.scan = original_scan
    return mixed, rounds


# ---------------------------------------------------------------------------
# part 2: partial-window observations in the active table
# ---------------------------------------------------------------------------


class RowAtATimeChannel(Channel):
    """A broken channel: commits each result row separately, exposing
    readers to partially-written windows."""

    def on_batch(self, rows, open_time, close_time):
        for row in rows:
            txn = self._txn_manager.begin()
            self.table.insert(txn, row)
            txn.commit()
            if self.probe is not None:
                self.probe(close_time)
        self.stats.batches += 1
        self.stats.rows_written += len(rows)
        self.stats.last_close = close_time


def partial_window_run(transactional: bool, minutes: int = 20, keys: int = 8):
    db = Database()
    db.execute("CREATE STREAM hits (k varchar(10), ts timestamp CQTIME USER)")
    db.execute_script("""
        CREATE STREAM rollup AS SELECT k, count(*) c, cq_close(*)
            FROM hits <VISIBLE '1 minute'> GROUP BY k;
        CREATE TABLE arch (k varchar(10), c bigint, stime timestamp);
    """)
    derived = db.catalog.get_relation("rollup")
    table = db.get_table("arch")

    observations = {"partial": 0, "probes": 0}

    def probe(close_time):
        # a concurrent dashboard query: how many keys has this window
        # archived so far?  (a fresh snapshot, as any reader would take)
        snapshot = db.txn_manager.take_snapshot()
        seen = sum(1 for _rid, row in table.scan(snapshot, db.txn_manager)
                   if row[2] == close_time)
        observations["probes"] += 1
        if 0 < seen < keys:
            observations["partial"] += 1

    if transactional:
        channel = Channel("ch", derived, table, db.txn_manager)
        channel.probe = None
        original = channel.on_batch

        def with_probe(rows, open_time, close_time):
            original(rows, open_time, close_time)
            probe(close_time)  # readers only ever probe between txns
        channel.on_batch = with_probe
        derived.subscribe(channel)
    else:
        channel = RowAtATimeChannel("ch", derived, table, db.txn_manager)
        channel.probe = probe
        derived.subscribe(channel)

    for minute in range(minutes):
        base = minute * MINUTE
        rows = [(f"k{i}", base + 1.0 + i * 0.01) for i in range(keys)]
        db.insert_stream("hits", rows)
    db.advance_streams(minutes * MINUTE)
    return observations["partial"], observations["probes"]


def test_e9_window_consistency(benchmark, report):
    report.experiment_id = "E9_consistency"

    mixed_ok, rounds = mixed_version_run(consistent=True)
    mixed_broken, _rounds = mixed_version_run(consistent=False)
    partial_ok, probes_ok = partial_window_run(transactional=True)
    partial_broken, probes_broken = partial_window_run(transactional=False)

    rows = [
        ["mixed-version join windows",
         f"{mixed_ok}/{rounds}", f"{mixed_broken}/{rounds}"],
        ["partial windows seen by readers",
         f"{partial_ok}/{probes_ok}", f"{partial_broken}/{probes_broken}"],
    ]
    text = format_table(
        ["anomaly", "window consistency (this system)",
         "broken variant (per-tuple / per-row)"],
        rows,
        title="E9: window consistency — table updates visible only on "
              "window boundaries; windows publish atomically (Section 4)")
    print("\n" + text)
    report.add(text)

    assert mixed_ok == 0
    assert mixed_broken > 0          # the anomaly is real without it
    assert partial_ok == 0
    assert partial_broken > 0

    benchmark.pedantic(lambda: partial_window_run(True, minutes=5),
                       rounds=2, iterations=1)
