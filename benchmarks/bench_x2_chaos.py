"""X2 — the cost of staying alive: supervision overhead under the E1
ingest workload, and the same pipeline with live fault injection.

The supervisor (quarantine, retry, restart — docs/FAULTS.md) only earns
its place in an always-on engine if the fault-free path stays cheap: its
wrappers sit on every window close, every channel write and every tuple
fan-out.  This benchmark ingests the E1 security workload through the
continuous pipeline three ways — unsupervised, supervised with an idle
(wired but disarmed) injector, and supervised with faults actually
firing — and reports best-of-N wall time per mode.

Acceptance: supervised/unsupervised best-of-N ratio <= 1.10 (the
guarded fast path costs less than 10%).
"""

import time

from repro import Database
from repro.bench.harness import format_table
from repro.faults import FaultInjector
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL

PIPELINE_DDL = """
CREATE STREAM blocked_rollup AS
    SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
           cq_close(*)
    FROM security_events <VISIBLE '1 minute'>
    WHERE action = 'block'
    GROUP BY severity;
CREATE TABLE blocked_archive (severity integer,
    hits bigint, bytes bigint, stime timestamp);
CREATE CHANNEL blocked_channel FROM blocked_rollup INTO blocked_archive APPEND;
"""

N_EVENTS = 20_000
ROUNDS = 5
MAX_OVERHEAD = 1.10


def chaos_injector():
    injector = FaultInjector(2009)
    injector.arm("cq.window", probability=0.05, count=3)
    injector.arm("channel.write", probability=0.05, count=3)
    injector.arm("stream.deliver", probability=0.0002, count=3)
    return injector


def ingest(events, supervised, injector=None):
    """One timed ingest; setup (DDL, generation) stays outside the clock."""
    db = Database(buffer_pages=64, supervised=supervised,
                  fault_injector=injector)
    db.execute(SECURITY_STREAM_DDL)
    db.execute_script(PIPELINE_DDL)
    started = time.perf_counter()
    db.insert_stream("security_events", events)
    db.advance_streams(events[-1][0] + 60.0)
    wall = time.perf_counter() - started
    letters = len(db.supervisor.dead_letter_log) if db.supervisor else 0
    return wall, len(db.table_rows("blocked_archive")), letters


def test_x2_supervision_overhead(benchmark, report):
    report.experiment_id = "X2_chaos_overhead"
    events = SecurityEventGenerator(rate_per_second=1000.0,
                                    seed=1).batch(N_EVENTS)
    modes = [
        ("unsupervised", dict(supervised=False)),
        ("supervised (idle injector)",
         dict(supervised=True, injector=FaultInjector(2009))),
        ("supervised + live faults",
         dict(supervised=True)),  # fresh armed injector per round, below
    ]
    best = {}
    detail = {}
    # interleave the modes across rounds so drift hits them all equally
    for _round in range(ROUNDS):
        for name, kwargs in modes:
            if name == "supervised + live faults":
                kwargs = dict(supervised=True, injector=chaos_injector())
            wall, archived, letters = ingest(events, **kwargs)
            if name not in best or wall < best[name]:
                best[name] = wall
            detail[name] = (archived, letters)

    base = best["unsupervised"]
    rows = []
    for name, _kwargs in modes:
        archived, letters = detail[name]
        rows.append([name, round(best[name], 4),
                     round(best[name] / base, 3), archived, letters])
    text = format_table(
        ["mode", "best wall s", "ratio vs unsupervised",
         "windows archived", "dead letters"],
        rows,
        title=f"X2: supervision overhead on the E1 ingest workload "
              f"({N_EVENTS} events, best of {ROUNDS})")
    print("\n" + text)
    report.add(text)

    ratio = best["supervised (idle injector)"] / base
    assert ratio <= MAX_OVERHEAD, \
        f"supervision overhead {ratio:.3f} exceeds {MAX_OVERHEAD}"
    # the fault-free supervised run archives exactly what unsupervised does
    assert detail["supervised (idle injector)"][0] \
        == detail["unsupervised"][0]
    # and the chaos run quarantined what it dropped
    assert detail["supervised + live faults"][1] > 0

    benchmark.pedantic(
        lambda: ingest(events[:2_000], supervised=True,
                       injector=FaultInjector(2009)),
        rounds=3, iterations=1)
