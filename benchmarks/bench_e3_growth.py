"""E3 — Network Effect #1: data growth makes store-first slower every
year, while continuous analytics stays flat (Section 1.1).

"Companies ... are facing data volume growth of as much as 10x per year.
In such environments, peak load one year quickly becomes normal load the
next."  We sweep raw-data volume geometrically (the compound-growth
series) and measure ingest-to-answer simulated cost for both
architectures: the warehouse's report cost grows with volume; the
stream-relational system's stays O(answer).
"""

from repro import Database
from repro.baselines import BatchWarehouse
from repro.bench.harness import format_table
from repro.bench.metrics import measure
from repro.workloads import SecurityEventGenerator, growth_series
from repro.workloads.security import SECURITY_STREAM_DDL, SECURITY_TABLE_DDL

VOLUMES = growth_series(4_000, 4, 3)  # 4k, 16k, 64k — compound growth

REPORT = """
SELECT severity, count(*) FROM security_events_raw GROUP BY severity
"""

CONTINUOUS = """
CREATE STREAM sev_rollup AS
    SELECT severity, count(*) hits, cq_close(*)
    FROM security_events <VISIBLE '1 minute'> GROUP BY severity;
CREATE TABLE sev_archive (severity integer, hits bigint, stime timestamp);
CREATE CHANNEL sev_channel FROM sev_rollup INTO sev_archive APPEND;
"""


def warehouse_year(volume):
    wh = BatchWarehouse(buffer_pages=64)
    wh.create_raw_table(SECURITY_TABLE_DDL)
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=2)
    wh.ingest("security_events_raw", gen.batch(volume))
    _result, cost = wh.report(REPORT, cold_cache=True)
    return wh.load_cost.sim_seconds, cost.sim_seconds


def continuous_year(volume):
    db = Database(buffer_pages=64)
    db.execute(SECURITY_STREAM_DDL)
    db.execute_script(CONTINUOUS)
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=2)
    events = gen.batch(volume)
    with measure(db, "ingest") as ingest:
        db.insert_stream("security_events", events)
        db.advance_streams(events[-1][0] + 60.0)
    db.drop_caches()
    with measure(db, "report") as rep:
        db.query("SELECT severity, sum(hits) FROM sev_archive "
                 "GROUP BY severity")
    return ingest.sim_seconds, rep.sim_seconds


def test_e3_growth_sweep(benchmark, report):
    report.experiment_id = "E3_growth"
    rows = []
    batch_reports, cont_reports = [], []
    for year, volume in enumerate(VOLUMES, start=1):
        b_ingest, b_report = warehouse_year(volume)
        c_ingest, c_report = continuous_year(volume)
        batch_reports.append(b_report)
        cont_reports.append(c_report)
        rows.append([f"year {year}", volume,
                     round(b_ingest, 4), round(b_report, 4),
                     round(c_ingest, 4), round(c_report, 4)])
    text = format_table(
        ["", "raw events", "batch load sim s", "batch report sim s",
         "stream ingest sim s", "active report sim s"],
        rows,
        title="E3: compound data growth — the warehouse report cost "
              "compounds with volume; the continuous report stays flat")
    print("\n" + text)
    report.add(text)

    # shape: batch report cost grows ~with volume, continuous is flat
    assert batch_reports[-1] > batch_reports[0] * 5
    assert cont_reports[-1] < cont_reports[0] * 3 + 0.01
    # at the largest volume the continuous report wins by a wide margin
    # (the continuous side is pinned at one disk seek; the batch side
    # keeps compounding with the data)
    assert batch_reports[-1] > cont_reports[-1] * 5

    benchmark.pedantic(lambda: continuous_year(VOLUMES[0]),
                       rounds=2, iterations=1)
