"""X4 — observability overhead: always-on metrics and sampled tracing
must not tax the hot path.

The obs subsystem is designed so the steady-state ingest/window loop
pays almost nothing: engine-side counts (buffer, WAL, replication,
server) are read through callback gauges only when a snapshot is taken,
and the per-tuple work is one counter increment plus an every-Nth
sampling decision.  This bench puts a number on "almost nothing" by
driving the E1 security workload — ingest through a windowed rollup CQ
into an archival channel — under three configurations:

  off      Database(observability=False): every hook compiled out
  metrics  observability on, trace sampling off
  traced   observability on, 1%% of tuples carry a full span tree

Each configuration is timed over several interleaved repeats and the
best (least-noisy) wall time is kept.  The gate asserts the traced
configuration stays within 5%% of the bare engine.
"""

import sys
import time

from repro import Database
from repro.bench.harness import format_table
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL

CONTINUOUS_DDL = """
CREATE STREAM blocked_rollup AS
    SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
           cq_close(*)
    FROM security_events <VISIBLE '5 seconds'>
    WHERE action = 'block'
    GROUP BY severity;
CREATE TABLE blocked_archive (severity integer,
    hits bigint, bytes bigint, stime timestamp);
CREATE CHANNEL blocked_channel FROM blocked_rollup INTO blocked_archive APPEND;
"""

#: (label, Database kwargs) for the three configurations under test
CONFIGS = [
    ("off", {"observability": False}),
    ("metrics", {"observability": True, "trace_sample_rate": 0.0}),
    ("traced", {"observability": True, "trace_sample_rate": 0.01}),
]

GATE_PCT = 5.0


def run_once(n_events, db_kwargs, chunk=2_000):
    """One full ingest+window pass; returns wall seconds."""
    db = Database(buffer_pages=64, **db_kwargs)
    db.execute(SECURITY_STREAM_DDL)
    db.execute_script(CONTINUOUS_DDL)
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=1)
    events = gen.batch(n_events)
    started = time.perf_counter()
    for i in range(0, len(events), chunk):
        db.insert_stream("security_events", events[i:i + chunk])
    db.advance_streams(events[-1][0] + 60.0)
    wall = time.perf_counter() - started
    # sanity: the pipeline actually ran end to end
    archived = db.query("SELECT count(*) FROM blocked_archive").scalar()
    assert archived and archived > 0
    return wall


def measure(n_events, repeats=7):
    """Paired per-round measurement.  Every round runs all three
    configurations back to back (order rotating), and each
    configuration's overhead is the *median of its per-round ratios*
    against that same round's baseline — pairing cancels the slow
    drift and noisy neighbors of a shared machine far better than
    comparing global bests taken minutes apart."""
    walls = {label: [] for label, _ in CONFIGS}
    for round_no in range(repeats):
        shift = round_no % len(CONFIGS)
        order = CONFIGS[shift:] + CONFIGS[:shift]
        round_walls = {}
        for label, kwargs in order:
            round_walls[label] = run_once(n_events, kwargs)
        for label, wall in round_walls.items():
            walls[label].append(wall)
    return walls


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def build_report(n_events, walls):
    rows = []
    overheads = {}
    for label, _ in CONFIGS:
        ratios = [w / base for w, base in zip(walls[label], walls["off"])]
        overhead = (_median(ratios) - 1.0) * 100.0
        overheads[label] = overhead
        wall = _median(walls[label])
        rows.append([label, n_events, round(wall * 1000, 2),
                     round(n_events / wall, 0),
                     "-" if label == "off" else f"{overhead:+.2f}%"])
    text = format_table(
        ["config", "events", "median wall ms", "events/s",
         "median paired overhead"],
        rows,
        title="X4: observability overhead on the E1 ingest+window pipeline "
              f"(gate: traced within {GATE_PCT:.0f}% of bare engine)")
    return text, overheads


def test_x4_observability_overhead(report):
    report.experiment_id = "X4_obs"
    n_events = 40_000
    best = measure(n_events, repeats=5)
    text, overheads = build_report(n_events, best)
    print("\n" + text)
    report.add(text)
    assert overheads["traced"] < GATE_PCT, (
        f"traced observability costs {overheads['traced']:.2f}% "
        f"(gate {GATE_PCT}%)")


def main():
    """Standalone smoke entry point (``make obs-smoke``): smaller run,
    same gate, nonzero exit on failure."""
    n_events = 15_000
    best = measure(n_events, repeats=3)
    text, overheads = build_report(n_events, best)
    print(text)
    if overheads["traced"] >= GATE_PCT:
        print(f"FAIL: traced overhead {overheads['traced']:.2f}% "
              f">= gate {GATE_PCT}%", file=sys.stderr)
        return 1
    print(f"OK: traced overhead {overheads['traced']:.2f}% "
          f"< gate {GATE_PCT}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
