"""X8 — segmented WAL overhead: rolling segments must not tax ingest.

The durability loop (segmented log + manifest + roll-at-flush checks)
replaces the legacy append-only ``wal.jsonl`` as the on-disk format for
every data-dir-backed server.  Its write path does strictly more work
per flush: a byte-budget check, an occasional file rotation with a
manifest rewrite, and per-segment accounting.  The gate asserts that on
the E1 ingest+window workload — durable stream ingest through a
windowed rollup CQ into an archival channel — the segmented layout
stays within 5% of the single-file baseline, even with segments small
enough to roll hundreds of times during the run.

Paired per-round measurement, as in X4/X6: each round runs both layouts
back to back (order rotating) in fresh temp directories, and overhead
is the median of per-round ratios.
"""

import shutil
import sys
import tempfile
import time

from repro import Database
from repro.bench.harness import format_table
from repro.workloads import SecurityEventGenerator

GATE_PCT = 5.0

#: small enough that a 15k-event run rolls the log many times over
SEGMENT_BYTES = 256 * 1024

STREAM_DDL = """
CREATE STREAM security_events (
    etime timestamp CQTIME USER,
    src_ip varchar(50),
    dst_ip varchar(50),
    dst_port integer,
    action varchar(10),
    severity integer,
    bytes_sent bigint
)
"""

CONTINUOUS_DDL = """
CREATE STREAM blocked_rollup AS
    SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
           cq_close(*)
    FROM security_events <VISIBLE '5 seconds'>
    WHERE action = 'block'
    GROUP BY severity;
CREATE TABLE blocked_archive (severity integer,
    hits bigint, bytes bigint, stime timestamp);
CREATE CHANNEL blocked_channel FROM blocked_rollup INTO blocked_archive APPEND;
"""

CONFIGS = ["single-file", "segmented"]


def run_once(n_events, config, chunk=2_000):
    """One full durable ingest+window pass; returns wall seconds."""
    workdir = tempfile.mkdtemp(prefix="repro-x8-")
    try:
        if config == "segmented":
            db = Database(buffer_pages=64, observability=False,
                          wal_path=f"{workdir}/wal",
                          wal_segment_bytes=SEGMENT_BYTES,
                          wal_archive_dir=f"{workdir}/wal_archive")
        else:
            db = Database(buffer_pages=64, observability=False,
                          wal_path=f"{workdir}/wal.jsonl")
        db.execute(STREAM_DDL)
        db.execute_script(CONTINUOUS_DDL)
        gen = SecurityEventGenerator(rate_per_second=1000.0, seed=1)
        events = gen.batch(n_events)
        started = time.perf_counter()
        for i in range(0, len(events), chunk):
            db.insert_stream("security_events", events[i:i + chunk])
        db.advance_streams(events[-1][0] + 60.0)
        wall = time.perf_counter() - started
        # sanity: end-to-end results and, for segments, real rolling
        archived = db.query(
            "SELECT count(*) FROM blocked_archive").scalar()
        assert archived and archived > 0
        if config == "segmented":
            assert db.storage.wal.segments.rolls >= 3, (
                f"only {db.storage.wal.segments.rolls} rolls — "
                f"shrink SEGMENT_BYTES so the bench exercises rotation")
        db.close()
        return wall
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def measure(n_events, repeats=7):
    walls = {label: [] for label in CONFIGS}
    for round_no in range(repeats):
        shift = round_no % len(CONFIGS)
        order = CONFIGS[shift:] + CONFIGS[:shift]
        for label in order:
            walls[label].append(run_once(n_events, label))
    return walls


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def build_report(n_events, walls):
    rows = []
    ratios = [w / base for w, base
              in zip(walls["segmented"], walls["single-file"])]
    overhead = (_median(ratios) - 1.0) * 100.0
    for label in CONFIGS:
        wall = _median(walls[label])
        rows.append([label, n_events, round(wall * 1000, 2),
                     round(n_events / wall, 0),
                     "-" if label == "single-file"
                     else f"{overhead:+.2f}%"])
    text = format_table(
        ["layout", "events", "median wall ms", "events/s",
         "median paired overhead"],
        rows,
        title="X8: segmented-WAL ingest overhead vs the single-file "
              f"baseline (gate: within {GATE_PCT:.0f}%)")
    return text, overhead


def test_x8_wal_overhead(report):
    report.experiment_id = "X8_wal"
    n_events = 40_000
    walls = measure(n_events, repeats=5)
    text, overhead = build_report(n_events, walls)
    print("\n" + text)
    report.add(text)
    assert overhead < GATE_PCT, (
        f"segmented WAL costs {overhead:.2f}% (gate {GATE_PCT}%)")


def main():
    """Standalone smoke entry point (``make wal-smoke``): smaller run,
    same gate, nonzero exit on failure."""
    n_events = 15_000
    walls = measure(n_events, repeats=3)
    text, overhead = build_report(n_events, walls)
    print(text)
    if overhead >= GATE_PCT:
        print(f"FAIL: segmented WAL overhead {overhead:.2f}% "
              f">= gate {GATE_PCT}%", file=sys.stderr)
        return 1
    print(f"OK: segmented WAL overhead {overhead:.2f}% < gate {GATE_PCT}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
