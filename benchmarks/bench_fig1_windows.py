"""F1 — Figure 1: "Windows Produce a Sequence of Tables".

The paper's only figure is conceptual: a window operator turns a stream
into a sequence of relations, to which ordinary SQL applies.  This bench
makes it concrete: it drives the paper's url_stream through
``<VISIBLE '5 minutes' ADVANCE '1 minute'>`` and prints the sequence of
per-window relations, then times window-operator throughput.
"""

from repro import Database
from repro.bench.harness import format_table, print_table
from repro.workloads import ClickstreamGenerator

MINUTE = 60.0


def build_db():
    db = Database()
    db.execute("CREATE STREAM url_stream (url varchar(1024), "
               "atime timestamp CQTIME USER, client_ip varchar(50))")
    return db


def test_fig1_sequence_of_tables(benchmark, report):
    report.experiment_id = "F1_windows"
    db = build_db()
    sub = db.subscribe(
        "SELECT url, count(*) c FROM url_stream "
        "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url ORDER BY url")

    gen = ClickstreamGenerator(n_urls=4, rate_per_second=0.2, seed=11)
    events = gen.batch(100)  # ~8 minutes of data
    db.insert_stream("url_stream", events)
    end = events[-1][1] + 5 * MINUTE
    db.advance_streams(end)

    windows = sub.poll()
    rows = []
    for w in windows[:10]:
        rows.append([
            f"[{w.open_time:7.0f}, {w.close_time:7.0f})",
            len(w.rows),
            ", ".join(f"{u}={c}" for u, c in w.rows[:3])
            + ("..." if len(w.rows) > 3 else ""),
        ])
    text = format_table(
        ["window [open, close)", "rows", "relation (url=count)"], rows,
        title="Figure 1: the window clause turns url_stream into a "
              "sequence of relations (first 10 shown)")
    print("\n" + text)
    report.add(text)

    # shape assertions: one relation per ADVANCE tick, consecutive closes
    closes = [w.close_time for w in windows]
    assert all(b - a == MINUTE for a, b in zip(closes, closes[1:]))
    assert any(len(w.rows) > 0 for w in windows)

    # benchmark: window-operator + per-window plan throughput
    def run_once():
        db2 = build_db()
        sub2 = db2.subscribe(
            "SELECT url, count(*) FROM url_stream "
            "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url")
        db2.insert_stream("url_stream", events)
        db2.advance_streams(end)
        return len(sub2.poll())

    produced = benchmark(run_once)
    assert produced == len(windows)
