"""A3 (ablation) — the memory hierarchy argument of Section 2.2.

"Such processing avoids the costs of reading and writing to/from disk,
moving data repeatedly through the memory and cache hierarchy..."  The
store-first architecture depends on the buffer pool: when the working
set fits, repeated reports are cheap; when it does not, every run
re-reads from disk.  Continuous analytics sidesteps the question — its
state is the (small) answer.  This ablation sweeps buffer-pool size on a
repeated batch report and shows the cliff, then the continuous
equivalent that never faces it.
"""

from repro import Database
from repro.bench.harness import format_table
from repro.bench.metrics import measure
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL, SECURITY_TABLE_DDL

EVENTS = 30_000
REPORT = ("SELECT severity, count(*) FROM security_events_raw "
          "GROUP BY severity")
POOLS = [16, 64, 1024]


def batch_repeated_report(buffer_pages):
    db = Database(buffer_pages=buffer_pages)
    db.execute(SECURITY_TABLE_DDL)
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=5)
    db.insert_table("security_events_raw", gen.batch(EVENTS))
    db.storage.pool.flush()
    table_pages = db.get_table("security_events_raw").heap.page_count
    db.drop_caches()
    with measure(db) as first:
        db.query(REPORT)
    with measure(db) as second:  # immediately re-run: warm if it fits
        db.query(REPORT)
    return table_pages, first.pages_read, second.pages_read


def continuous_equivalent(buffer_pages):
    db = Database(buffer_pages=buffer_pages)
    db.execute(SECURITY_STREAM_DDL)
    db.execute_script("""
        CREATE STREAM sev AS SELECT severity, count(*) c, cq_close(*)
            FROM security_events <VISIBLE '1 minute'> GROUP BY severity;
        CREATE TABLE sev_arch (severity integer, c bigint, ts timestamp);
        CREATE CHANNEL sev_ch FROM sev INTO sev_arch APPEND;
    """)
    gen = SecurityEventGenerator(rate_per_second=1000.0, seed=5)
    events = gen.batch(EVENTS)
    db.insert_stream("security_events", events)
    db.advance_streams(events[-1][0] + 60.0)
    db.drop_caches()
    with measure(db) as report:
        db.query("SELECT severity, sum(c) FROM sev_arch GROUP BY severity")
    return report.pages_read


def test_a3_buffer_pool_ablation(benchmark, report):
    report.experiment_id = "A3_buffer"
    rows = []
    seconds = []
    for pool in POOLS:
        table_pages, cold, warm = batch_repeated_report(pool)
        cont = continuous_equivalent(pool)
        fits = pool >= table_pages
        rows.append([pool, table_pages, cold, warm,
                     "yes" if fits else "no", cont])
        seconds.append((pool, table_pages, warm))
    text = format_table(
        ["buffer pages", "table pages", "1st report pages read",
         "2nd report pages read", "working set fits", "active report pages"],
        rows,
        title=f"A3: buffer-pool sweep, {EVENTS} raw events — the batch "
              "report thrashes below the working set; the active table "
              "never does")
    print("\n" + text)
    report.add(text)

    small_pool = next(s for s in seconds if s[0] < s[1])
    big_pool = next(s for s in seconds if s[0] >= s[1])
    # below the working set the re-run re-reads ~the whole table;
    # above it the re-run is (almost) free
    assert small_pool[2] > small_pool[1] * 0.8
    assert big_pool[2] <= 2
    # the active-table report is small regardless of pool size
    assert all(row[5] <= 2 for row in rows)

    benchmark.pedantic(lambda: batch_repeated_report(64),
                       rounds=2, iterations=1)
