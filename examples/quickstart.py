"""Quickstart: the paper's Examples 1-4 in twenty lines.

Creates a stream, runs the top-10-URLs continuous query (Example 2),
archives per-minute counts into an active table through a derived stream
and a channel (Examples 3-4), and queries the archive with plain SQL.

Run:  python examples/quickstart.py
"""

from repro import Database

MINUTE = 60.0


def main():
    db = Database()

    # Example 1: a stream is an ordered, unbounded relation
    db.execute("""
        CREATE STREAM url_stream (
            url        varchar(1024),
            atime      timestamp CQTIME USER,
            client_ip  varchar(50)
        )
    """)

    # Example 2: a continuous query — note the window clause; everything
    # else is plain SQL
    top10 = db.execute("""
        SELECT url, count(*) url_count
        FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
        GROUP BY url
        ORDER BY url_count DESC
        LIMIT 10
    """)

    # Examples 3 + 4: derived stream -> channel -> active table
    db.execute_script("""
        CREATE STREAM urls_now AS
            SELECT url, count(*) AS scnt, cq_close(*)
            FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
            GROUP BY url;
        CREATE TABLE urls_archive (url varchar(1024), scnt integer,
                                   stime timestamp);
        CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND;
    """)

    # feed two minutes of traffic (event time is the CQTIME column)
    db.insert_stream("url_stream", [
        ("/home", 5.0, "10.0.0.1"),
        ("/home", 12.0, "10.0.0.2"),
        ("/cart", 30.0, "10.0.0.1"),
        ("/home", 65.0, "10.0.0.3"),
        ("/checkout", 80.0, "10.0.0.1"),
    ])
    db.advance_streams(2 * MINUTE)  # the clock reaches t=120s

    print("== top-10 windows so far ==")
    for window in top10.poll():
        print(f"  window closing at t={window.close_time:.0f}s:")
        for url, count in window.rows:
            print(f"    {url:<12} {count}")

    print("\n== the active table is an ordinary SQL table ==")
    result = db.query("""
        SELECT url, sum(scnt) AS total
        FROM urls_archive GROUP BY url ORDER BY total DESC
    """)
    print(result.pretty())


if __name__ == "__main__":
    main()
