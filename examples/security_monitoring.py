"""Security reporting — the paper's Section 4 use case.

A firewall/IDS event stream feeds three always-on metrics (the "known
queries" of Section 1.4): blocked traffic by severity, top talkers, and
a real-time alert transform.  Reports that took a batch warehouse a full
raw-table scan become lookups in small active tables, and the alert CQ
shows the same system serving a real-time consumer.

Run:  python examples/security_monitoring.py
"""

from repro import Database
from repro.workloads import SecurityEventGenerator
from repro.workloads.security import SECURITY_STREAM_DDL

MINUTE = 60.0


def main():
    db = Database()
    db.execute(SECURITY_STREAM_DDL)

    # metric 1: blocked traffic by severity, per minute, archived
    db.execute_script("""
        CREATE STREAM blocked_by_severity AS
            SELECT severity, count(*) AS hits, sum(bytes_sent) AS bytes,
                   cq_close(*)
            FROM security_events <VISIBLE '1 minute'>
            WHERE action = 'block'
            GROUP BY severity;
        CREATE TABLE blocked_archive (severity integer, hits bigint,
                                      bytes bigint, stime timestamp);
        CREATE CHANNEL blocked_ch FROM blocked_by_severity
            INTO blocked_archive APPEND;
    """)

    # metric 2: top talkers over a sliding 5 minutes, REPLACE semantics —
    # the active table always holds the current answer
    db.execute_script("""
        CREATE STREAM top_talkers_now AS
            SELECT src_ip, count(*) AS hits, cq_close(*)
            FROM security_events <VISIBLE '5 minutes' ADVANCE '1 minute'>
            GROUP BY src_ip
            ORDER BY hits DESC
            LIMIT 5;
        CREATE TABLE top_talkers (src_ip varchar(50), hits bigint,
                                  stime timestamp);
        CREATE CHANNEL talkers_ch FROM top_talkers_now
            INTO top_talkers REPLACE;
    """)

    # metric 3: a real-time alert stream (window-less transform CQ)
    alerts = db.subscribe("""
        SELECT etime, src_ip, dst_port, severity
        FROM security_events
        WHERE action = 'block' AND severity >= 5
    """)

    # ten minutes of traffic
    gen = SecurityEventGenerator(rate_per_second=50.0, seed=2026)
    events = gen.batch(int(50 * 60 * 10))
    db.insert_stream("security_events", events)
    db.advance_streams(events[-1][0] + MINUTE)

    print("== blocked traffic by severity (from the active table) ==")
    print(db.query("""
        SELECT severity, sum(hits) AS total_hits, sum(bytes) AS total_bytes
        FROM blocked_archive GROUP BY severity ORDER BY severity
    """).pretty())

    print("\n== current top talkers (REPLACE-mode active table) ==")
    print(db.query(
        "SELECT src_ip, hits FROM top_talkers ORDER BY hits DESC").pretty())

    high_sev = alerts.rows()
    print(f"\n== real-time alerts: {len(high_sev)} severity-5 blocks, "
          "first three ==")
    for etime, src_ip, port, severity in high_sev[:3]:
        print(f"  t={etime:9.2f}s  {src_ip:<16} port {port:<6} sev {severity}")

    # the report-vs-raw comparison from the paper's anecdote
    db.execute("""CREATE TABLE raw_copy (etime timestamp, src_ip varchar(50),
        dst_ip varchar(50), dst_port integer, action varchar(10),
        severity integer, bytes_sent bigint)""")
    db.insert_table("raw_copy", events)
    db.storage.pool.flush()
    db.drop_caches()
    before = db.io_snapshot()
    db.query("SELECT severity, count(*) FROM raw_copy "
             "WHERE action = 'block' GROUP BY severity")
    raw_pages = (db.io_snapshot() - before).pages_read
    db.drop_caches()
    before = db.io_snapshot()
    db.query("SELECT severity, sum(hits) FROM blocked_archive "
             "GROUP BY severity")
    active_pages = (db.io_snapshot() - before).pages_read
    print(f"\n== store-first vs continuous, same report ==")
    print(f"  raw-table scan:    {raw_pages} pages read")
    print(f"  active-table read: {active_pages} pages read")


if __name__ == "__main__":
    main()
