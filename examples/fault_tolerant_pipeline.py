"""Crash and recover a continuous query from its Active Table.

Section 4's recovery argument, demonstrated: a rollup CQ archives into
an active table; we kill it mid-stream, rebuild its runtime state from
the archive's high-water mark plus a short stream replay, and show the
final archive is byte-identical to an uninterrupted run — with zero
extra I/O paid during normal operation.

Run:  python examples/fault_tolerant_pipeline.py
"""

from repro import Database
from repro.sql import parse_statement
from repro.streaming.cq import ContinuousQuery
from repro.streaming.recovery import recover_from_active_table

MINUTE = 60.0
CQ_SQL = """
    SELECT url, count(*) AS hits, cq_close(*)
    FROM clicks <VISIBLE '2 minutes' ADVANCE '1 minute'>
    GROUP BY url
"""


def make_db():
    db = Database(stream_retention=3600.0)
    db.execute("CREATE STREAM clicks (url varchar(100), "
               "ts timestamp CQTIME USER)")
    db.execute("CREATE TABLE archive (url varchar(100), hits integer, "
               "stime timestamp)")
    return db


def attach_archiving_cq(db, name="rollup"):
    cq = db.runtime.create_cq(parse_statement(CQ_SQL), name=name)
    table = db.get_table("archive")

    def sink(rows, open_time, close_time):
        txn = db.txn_manager.begin()
        for row in rows:
            table.insert(txn, row)
        txn.commit()
    cq.add_sink(sink)
    return cq, sink


def minute_of_traffic(minute):
    base = minute * MINUTE
    return [(f"/page{i % 3}", base + 1.0 + i) for i in range(20)]


def main():
    db = make_db()
    cq, sink = attach_archiving_cq(db)

    print("feeding minutes 0-5 ...")
    for minute in range(5):
        db.insert_stream("clicks", minute_of_traffic(minute))
    db.advance_streams(5 * MINUTE)
    print(f"  archive rows so far: {len(db.table_rows('archive'))}")

    print("\nCRASH: killing the CQ (runtime state lost; tables and the "
          "stream's retained tail survive)")
    db.runtime.stop_cq(cq)

    print("recovering from the active table ...")
    new_cq = ContinuousQuery("rollup", parse_statement(CQ_SQL),
                             db.catalog, db.txn_manager)
    new_cq.add_sink(sink)
    replay_from = recover_from_active_table(
        new_cq, db.get_table("archive"), db.txn_manager, "stime")
    new_cq.attach()
    print(f"  archive high-water mark found; stream replayed from "
          f"t={replay_from:.0f}s")

    print("\nfeeding minutes 5-9 ...")
    for minute in range(5, 9):
        db.insert_stream("clicks", minute_of_traffic(minute))
    db.advance_streams(9 * MINUTE)

    # reference: the same workload with no crash
    ref_db = make_db()
    attach_archiving_cq(ref_db)
    for minute in range(9):
        ref_db.insert_stream("clicks", minute_of_traffic(minute))
    ref_db.advance_streams(9 * MINUTE)

    recovered = sorted(db.table_rows("archive"))
    reference = sorted(ref_db.table_rows("archive"))
    print(f"\nrecovered archive: {len(recovered)} rows; "
          f"uninterrupted run: {len(reference)} rows")
    print("archives identical:", recovered == reference)
    assert recovered == reference


if __name__ == "__main__":
    main()
