"""Clickstream dashboard with week-over-week comparison (Example 5).

The use case from the paper's introduction: "understanding what a user
is doing while they are still interacting with the site".  A clickstream
feeds per-minute URL rollups into an archive; a second CQ joins the live
rollup against the archive to report each minute's traffic versus the
same minute one week earlier — the paper's Example 5 pattern.

Run:  python examples/clickstream_dashboard.py
"""

from repro import Database
from repro.workloads import ClickstreamGenerator
from repro.workloads.clickstream import URL_STREAM_DDL

MINUTE = 60.0
WEEK = 7 * 86400.0


def main():
    db = Database()
    db.execute(URL_STREAM_DDL)
    db.execute_script("""
        CREATE STREAM urls_now AS
            SELECT url, count(*) AS scnt, cq_close(*)
            FROM url_stream <VISIBLE '1 minute'>
            GROUP BY url;
        CREATE TABLE urls_archive (url varchar(1024), scnt integer,
                                   stime timestamp);
        CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND;
    """)

    # Example 5, verbatim save the comparison horizon
    week_over_week = db.execute("""
        SELECT c.scnt, h.scnt, c.stime
        FROM (SELECT sum(scnt) AS scnt, cq_close(*) AS stime
              FROM urls_now <slices 1 windows>) c,
             urls_archive h
        WHERE c.stime - '1 week'::interval = h.stime
    """)

    # ---- last week's traffic: five minutes at ~2 clicks/second --------
    last_week = ClickstreamGenerator(n_urls=20, rate_per_second=2.0, seed=1)
    events = last_week.batch(int(2 * 60 * 5))
    db.insert_stream("url_stream", events)
    db.advance_streams(6 * MINUTE)
    print(f"archived {len(db.table_rows('urls_archive'))} per-URL-minute "
          "rows for last week")

    # ---- a quiet week passes ------------------------------------------
    db.get_stream("url_stream").advance_to(WEEK)

    # ---- this week: the same five minutes, heavier traffic ------------
    this_week = ClickstreamGenerator(n_urls=20, rate_per_second=3.0,
                                     start_time=WEEK, seed=2)
    events = this_week.batch(int(3 * 60 * 5))
    db.insert_stream("url_stream", events)
    db.advance_streams(WEEK + 6 * MINUTE)

    print("\n== Example 5's join output (current total vs each archived "
          "row one week earlier) ==")
    shown = 0
    for window in week_over_week.poll():
        for current, historical, stime in window.rows:
            if shown < 5:
                minute = int((stime - WEEK) / MINUTE)
                print(f"  minute {minute}: current total {current} vs "
                      f"archived per-URL count {historical}")
                shown += 1

    print("\n== minute-by-minute totals vs the same minute last week ==")
    print(f"{'minute':>8}  {'this week':>10}  {'last week':>10}  {'change':>8}")
    totals = db.query(f"""
        SELECT stime, sum(scnt) FROM urls_archive
        WHERE stime >= {WEEK!r} GROUP BY stime ORDER BY stime
    """)
    for stime, current_total in totals.rows:
        past = db.query(
            f"SELECT sum(scnt) FROM urls_archive "
            f"WHERE stime = {stime - WEEK!r}").scalar()
        if past is None:
            continue
        minute = int((stime - WEEK) / MINUTE)
        change = (current_total - past) / past * 100.0
        print(f"{minute:>8}  {current_total:>10}  {past:>10}  {change:>7.1f}%")

    print("\n== top pages this week (live, from the archive) ==")
    print(db.query(f"""
        SELECT url, sum(scnt) AS clicks
        FROM urls_archive WHERE stime >= {WEEK!r}
        GROUP BY url ORDER BY clicks DESC LIMIT 5
    """).pretty())


if __name__ == "__main__":
    main()
