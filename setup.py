"""Legacy-installer fallback (`python setup.py develop`).

Normal installs use `pip install -e .`, which works fully offline via the
stdlib-only PEP 517 backend in _offline_build.py.
"""
from setuptools import setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=[
        "repro", "repro.baselines", "repro.bench", "repro.catalog",
        "repro.core", "repro.exec", "repro.sql", "repro.storage",
        "repro.streaming", "repro.txn", "repro.types", "repro.workloads",
    ],
    python_requires=">=3.9",
)
