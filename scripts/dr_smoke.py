#!/usr/bin/env python
"""CI smoke test for disaster recovery: online backup, kill -9, PITR.

Boots a primary as a real subprocess on a segmented WAL, builds the
standard ingest → derived-window → archive-channel pipeline, then:

1. ingests two full windows and takes an **online backup** over the
   protocol (the server keeps serving while it copies);
2. ingests a third window and records the durable head LSN as the
   point-in-time mark;
3. ingests a fourth window that is *meant to be lost*;
4. SIGKILLs the server mid-flight;
5. reboots it with ``--restore-from BACKUP --until-lsn MARK`` — restore
   merges the backup with the crashed data dir's surviving segments,
   discards everything past the mark, and boot recovery rebuilds every
   CQ window from the restored log;
6. compares the archive table against a never-crashed reference server
   fed exactly the pre-mark input: the rows must be identical.

Run from the repository root::

    PYTHONPATH=src python scripts/dr_smoke.py
"""

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def fail(message):
    print(f"DR SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def boot(args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"] + args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    # a restore prints its summary line before the listening banner
    for _ in range(20):
        line = proc.stdout.readline()
        if not line:
            break
        print(f"  server: {line.rstrip()}")
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    fail("server never printed its listening banner")


def build_pipeline(conn):
    conn.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
    conn.execute("CREATE STREAM totals AS SELECT count(*) c, sum(v) t, "
                 "cq_close(*) FROM s "
                 "<VISIBLE '10 seconds' ADVANCE '10 seconds'>")
    conn.execute("CREATE TABLE archive (c bigint, t bigint, ts timestamp)")
    conn.execute("CREATE CHANNEL arch FROM totals INTO archive APPEND")


# the four ingest phases; windows close at 10, 20, 30 (and 40 for the
# doomed phase).  Phase D exists only to be discarded by the PITR.
BATCH_A = [(i, float(i)) for i in range(1, 10)]           # (0, 10]
BATCH_B = [(2 * i, 10.0 + i) for i in range(1, 6)]        # (10, 20]
BATCH_C = [(3 * i, 20.0 + i) for i in range(1, 8)]        # (20, 30]
BATCH_D = [(99, 31.0), (98, 32.0), (97, 41.0)]            # doomed


def wait_archive_rows(conn, want, timeout=20.0):
    deadline = time.monotonic() + timeout
    rows = []
    while time.monotonic() < deadline:
        rows = conn.query(
            "SELECT c, t, ts FROM archive ORDER BY ts").rows
        if len(rows) >= want:
            return rows
        time.sleep(0.1)
    fail(f"archive never reached {want} windows: {rows}")


def main():
    workdir = tempfile.mkdtemp(prefix="repro-dr-")
    data_dir = os.path.join(workdir, "primary")
    backup_dir = os.path.join(workdir, "backup")
    prim = ref = None
    try:
        prim, host, port = boot(
            ["--data-dir", data_dir, "--retention", "600",
             "--wal-segment-bytes", "1024", "--compact-interval", "0.3"])
        print(f"primary up at {host}:{port}")

        import repro.client as client
        conn = client.connect(host, port)
        build_pipeline(conn)

        # two full windows, then an online backup over the protocol
        conn.ingest("s", BATCH_A)
        conn.ingest("s", BATCH_B)
        conn.ingest("s", [(0, 21.0)])            # closes (10, 20]
        wait_archive_rows(conn, 2)
        info = conn.backup(backup_dir)
        if not info.get("head_lsn") or not info.get("segments"):
            fail(f"backup returned no snapshot: {info!r}")
        if not os.path.exists(os.path.join(backup_dir, "BACKUP.json")):
            fail("backup directory has no BACKUP.json commit point")
        print(f"online backup taken: {info}")

        # a third window lands *after* the backup, then the mark
        conn.ingest("s", BATCH_C)
        conn.ingest("s", [(0, 31.0)])            # closes (20, 30]
        wait_archive_rows(conn, 3)
        mark = conn.query(
            "SELECT head_lsn FROM repro_storage").scalar()
        if not mark or mark <= info["head_lsn"]:
            fail(f"bad PITR mark {mark!r} (backup head {info['head_lsn']})")
        print(f"point-in-time mark: lsn {mark}")

        # a fourth, doomed window — durable, then kill -9
        conn.ingest("s", BATCH_D)                # closes (30, 40]
        wait_archive_rows(conn, 4)
        prim.send_signal(signal.SIGKILL)
        prim.wait(timeout=10)
        print("primary SIGKILLed with a durable post-mark window")

        # restore: backup + surviving segments, cut at the mark
        prim, host, port = boot(
            ["--data-dir", data_dir, "--retention", "600",
             "--wal-segment-bytes", "1024",
             "--restore-from", backup_dir, "--until-lsn", str(mark)])
        rconn = client.connect(host, port)
        restored = wait_archive_rows(rconn, 3)
        if len(restored) != 3:
            fail(f"PITR kept the doomed window: {restored}")
        head = rconn.query("SELECT head_lsn FROM repro_storage").scalar()
        if head != mark:
            fail(f"restored head {head} != mark {mark}")
        print(f"restored to lsn {head}: {restored}")

        # the reference: a never-crashed server fed the pre-mark input
        ref, rhost, rport = boot(
            [ "--data-dir", os.path.join(workdir, "reference"),
             "--retention", "600"])
        cref = client.connect(rhost, rport)
        build_pipeline(cref)
        cref.ingest("s", BATCH_A)
        cref.ingest("s", BATCH_B)
        cref.ingest("s", [(0, 21.0)])
        cref.ingest("s", BATCH_C)
        cref.ingest("s", [(0, 31.0)])
        expected = wait_archive_rows(cref, 3)

        if restored != expected:
            fail(f"restored CQ output diverges from the reference:\n"
                 f"  restored: {restored}\n  expected: {expected}")
        print(f"restored CQ output identical to reference: {expected}")

        cref.close()
        rconn.close()
        conn.close()
        print("DR SMOKE OK")
    finally:
        for proc in (prim, ref):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
