#!/usr/bin/env python
"""CI smoke test for high availability: SIGKILL the primary mid-window.

Boots a primary and a warm standby as real subprocesses on a shared
loopback, subscribes a client with ``failover_targets`` pointing at the
standby, ingests two full windows, then SIGKILLs the primary while the
third window is in flight.  The standby must auto-promote after missed
heartbeats, the client must fail over and resume its subscription, and
the delivered window sequence must be gap-free and duplicate-free —
identical closes to an uninterrupted run.

Also proves idempotent ingest end to end: one pre-crash batch is
stamped with ``(sender, seq)``; after promotion the same batch is
re-sent to the new primary, which must recognise it from the shipped
dedup marker and ack ``duplicate`` without applying a single row.

And proves event-time watermark durability end to end: an event-time
stream gets rows plus an explicit watermark injection pre-crash; the
promoted standby and a rebooted primary (same data dir, after the
SIGKILL) must both report the exact pre-crash watermark — promotion
and restart never regress it.

Run from the repository root::

    PYTHONPATH=src python scripts/failover_smoke.py
"""

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def fail(message):
    print(f"FAILOVER SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def boot(args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"] + args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    banner = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", banner)
    if not match:
        proc.kill()
        fail(f"no banner, got {banner!r}")
    return proc, match.group(1), int(match.group(2))


def main():
    workdir = tempfile.mkdtemp(prefix="repro-failover-")
    prim = stby = None
    try:
        prim, host, pport = boot(
            ["--data-dir", os.path.join(workdir, "primary"),
             "--retention", "600"])
        print(f"primary up at {host}:{pport}")

        import repro.client as client
        pconn = client.connect(host, pport)
        pconn.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        pconn.execute("CREATE STREAM totals AS SELECT count(*) c, "
                      "cq_close(*) FROM s "
                      "<VISIBLE '10 seconds' ADVANCE '10 seconds'>")
        pconn.execute("CREATE TABLE archive (c bigint, ts timestamp)")
        pconn.execute("CREATE CHANNEL arch FROM totals INTO archive APPEND")
        pconn.execute("CREATE STREAM ev (v integer, ts timestamp "
                      "CQTIME USER) WATERMARK '5 seconds'")

        stby, _shost, sport = boot(
            ["--data-dir", os.path.join(workdir, "standby"),
             "--standby-of", f"{host}:{pport}",
             "--heartbeat-interval", "0.2", "--miss-limit", "3",
             "--retention", "600"])
        print(f"standby up at {host}:{sport}")

        watcher = client.connect(host, pport,
                                 failover_targets=[(host, sport)],
                                 reconnect_max_backoff=0.5)
        sub = watcher.subscribe("totals")

        # two full windows, then tuples of the in-flight third window;
        # the second batch is stamped for the post-failover replay proof
        pconn.ingest("s", [(i, float(i)) for i in range(1, 10)])
        pconn.ingest("s", [(i, 10.0 + i) for i in range(1, 6)],
                     sender="smoke", seq=7)
        pconn.ingest("s", [(0, 21.0)])    # closes (10,20]; 21.0 in flight

        # event-time watermark: out-of-order rows plus an explicit
        # injection; the ack must carry the injected value back
        ev_ack = pconn.ingest("ev", [(1, 30.0), (2, 12.0)], watermark=42.0)
        if ev_ack.watermark != 42.0:
            fail(f"ingest ack watermark wrong: {ev_ack.watermark!r}")
        print(f"event-time watermark injected: {ev_ack.watermark}")

        got = list(sub.wait_windows(2, timeout=15.0))
        print(f"pre-crash windows: {[(w.close_time, w.rows) for w in got]}")

        # wait for the standby to be fully caught up
        sconn = client.connect(host, sport)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            rows = sconn.query(
                "SELECT lag FROM repro_replication_status").rows
            if rows and rows[0][0] == 0:
                break
            time.sleep(0.2)
        else:
            fail(f"standby never caught up: {rows}")
        print("standby lag: 0")

        # kill -9 the primary mid-window
        prim.send_signal(signal.SIGKILL)
        prim.wait(timeout=10)
        print("primary SIGKILLed")

        # the standby promotes itself after missed heartbeats
        deadline = time.monotonic() + 30.0
        role = None
        while time.monotonic() < deadline:
            try:
                role = sconn.query(
                    "SELECT role FROM repro_replication_status").scalar()
            except Exception:
                role = None
            if role == "primary":
                break
            time.sleep(0.3)
        if role != "primary":
            fail(f"standby never promoted (role={role!r})")
        print("standby promoted")

        # continue the stream on the new primary — but first, retry the
        # stamped pre-crash batch verbatim: its dedup marker travelled
        # in the shipped WAL, so the promoted standby must recognise
        # the replay and apply zero rows
        nconn = client.connect(host, sport)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            names = [r[0] for r in nconn.query(
                "SELECT name FROM repro_streams").rows]
            if "s" in names:
                break
            time.sleep(0.2)
        else:
            fail(f"promoted standby never rebuilt the pipeline: {names}")
        retry = nconn.ingest("s", [(i, 10.0 + i) for i in range(1, 6)],
                             sender="smoke", seq=7)
        if retry.accepted != 0 or retry.duplicate != 5:
            fail(f"replayed batch was not deduplicated: {retry!r}")
        print(f"replayed batch ack: {retry!r}")

        # the shipped watermark survived promotion, exactly
        wm = nconn.query("SELECT watermark FROM repro_watermarks "
                         "WHERE stream = 'ev'").scalar()
        if float(wm) != 42.0:
            fail(f"watermark regressed on promotion: {wm!r}")
        print(f"promoted standby watermark: {float(wm)}")
        nconn.ingest("s", [(i, 20.0 + i) for i in range(2, 8)])
        nconn.ingest("s", [(0, 31.0)])    # closes (20,30]

        deadline = time.monotonic() + 30.0
        while len(got) < 3 and time.monotonic() < deadline:
            got.extend(sub.poll(timeout=0.5))
        if len(got) < 3:
            fail(f"missing post-failover window: "
                 f"{[(w.close_time, w.rows) for w in got]}")
        if watcher.failovers < 1:
            fail("client never failed over")

        closes = [w.close_time for w in got]
        if closes != sorted(set(closes)):
            fail(f"duplicate or out-of-order windows: {closes}")
        if closes[:3] != [10.0, 20.0, 30.0]:
            fail(f"gap in window sequence: {closes}")
        # (20,30] = 0@21 (shipped pre-crash, rebuilt from the active
        # table at promotion) + 2..7@22..27 (post-failover) = 7 tuples
        third = got[2]
        if third.rows != [(7, 30.0)]:
            fail(f"wrong post-failover window: {third.rows}")
        print(f"all windows: {[(w.close_time, w.rows) for w in got]}")
        print(f"client failovers: {watcher.failovers}")

        # reboot the SIGKILLed primary on its own data dir: crash
        # recovery must land the watermark exactly where it was durable
        prim2, rhost, rport = boot(
            ["--data-dir", os.path.join(workdir, "primary"),
             "--retention", "600"])
        rconn = client.connect(rhost, rport)
        wm = rconn.query("SELECT watermark FROM repro_watermarks "
                         "WHERE stream = 'ev'").scalar()
        if float(wm) != 42.0:
            fail(f"watermark regressed on kill -9 restart: {wm!r}")
        print(f"rebooted primary watermark: {float(wm)}")
        rconn.close()
        prim2.kill()
        prim2.wait()

        watcher.close()
        sconn.close()
        nconn.close()
        pconn.close()
        print("FAILOVER SMOKE OK")
    finally:
        for proc in (prim, stby):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
