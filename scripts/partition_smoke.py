#!/usr/bin/env python
"""CI smoke test for partitioned execution: real workers, real SIGKILL.

Boots a :class:`PartitionedEngine` with **subprocess workers** over
loopback sockets, runs the standard keyed window CQ, then:

1. ingests two batches and notes each worker's PID from the
   ``repro_partitions`` status rows;
2. SIGKILLs one worker **mid-window** (its shard has buffered rows the
   next boundary still needs — no frame in flight, no warning);
3. keeps ingesting: the next frame owed to the dead worker triggers
   restart-with-replay — respawn, replay of the acked frame log,
   watermark fast-forward, then the in-flight frame;
4. flushes and compares the full window sequence against a plain
   single-process :class:`Database` fed exactly the same batches: the
   output must be **bit-identical** — same boundaries, same rows, no
   gap and no duplicate where the crash happened;
5. checks the restart surfaced in the status rows (``restarts == 1``,
   ``replayed_batches >= 1``) and that every worker ended ``up``.

Run from the repository root::

    PYTHONPATH=src python scripts/partition_smoke.py
"""

import os
import signal
import sys


def fail(message):
    print(f"PARTITION SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


DDL = ("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
       "PARTITION BY k")
CQ = ("SELECT k, count(*) AS n, sum(v) AS total, min(v) AS lo, "
      "max(v) AS hi FROM s <visible 10 advance 5> GROUP BY k "
      "ORDER BY k")

KEYS = ["alpha", "beta", "gamma", "delta", "epsilon"]
BATCHES = [
    [(float(t), KEYS[(t * 3 + b) % len(KEYS)], float(t % 7 - 3))
     for t in range(b * 6, b * 6 + 6)]
    for b in range(8)
]
KILL_AFTER = 2          # SIGKILL between batches 2 and 3 (mid-window)


def collect(sub):
    return [(w.kind, w.open_time, w.close_time, tuple(w.rows))
            for w in sub.poll()]


def reference():
    from repro import Database

    db = Database()
    db.execute(DDL.replace(" PARTITION BY k", ""))
    sub = db.execute(CQ)
    for rows in BATCHES:
        db.ingest_batch("s", rows)
    db.flush_streams()
    out = collect(sub)
    db.close()
    return out


def main():
    from repro.partition import PartitionedEngine

    print("== partition smoke: subprocess workers + SIGKILL mid-window ==")
    want = reference()
    print(f"  reference: {len(want)} windows from the single engine")

    eng = PartitionedEngine(partitions=3, transport="process")
    try:
        eng.execute(DDL)
        sub = eng.execute(CQ)
        for rows in BATCHES[:KILL_AFTER]:
            eng.ingest("s", rows)

        rows = eng.status_rows()
        if any(r[3] != "process" for r in rows):
            fail(f"expected subprocess transport, got {rows}")
        victim, pid = rows[1][0], rows[1][1]
        print(f"  SIGKILL worker {victim} (pid {pid}) mid-window")
        os.kill(pid, signal.SIGKILL)

        for rows in BATCHES[KILL_AFTER:]:
            eng.ingest("s", rows)
        eng.flush()
        got = collect(sub)

        status = eng.status_rows()
        for line in status:
            print(f"  worker {line[0]}: state={line[2]} "
                  f"routed={line[5]} restarts={line[10]} "
                  f"replayed={line[11]}")
        if got != want:
            diff = next((i for i, (g, w) in enumerate(zip(got, want))
                         if g != w), min(len(got), len(want)))
            fail(f"output diverged at window {diff}: "
                 f"got {got[diff:diff + 1]} want {want[diff:diff + 1]} "
                 f"({len(got)} vs {len(want)} windows)")
        if status[victim][10] != 1:
            fail(f"worker {victim} restarts = {status[victim][10]}, "
                 "expected exactly 1")
        if status[victim][11] < 1:
            fail("restart replayed no batches")
        if any(r[2] != "up" for r in status):
            fail(f"not all workers ended up: {status}")
    finally:
        eng.close()

    print(f"PARTITION SMOKE PASS: {len(want)} windows bit-identical "
          "across a SIGKILL + restart-with-replay")


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    main()
