#!/usr/bin/env python
"""CI smoke test for the network server.

Starts ``repro-server`` as a real subprocess, connects with the client
library, ingests a micro-batch, subscribes to a derived stream, asserts
one correct window arrives, asks the server to shut down gracefully,
and checks that the process exits 0.  Exercises the full stack the way
a deployment would: separate processes, a real TCP socket, signal-free
shutdown over the protocol.

Run from the repository root::

    PYTHONPATH=src python scripts/server_smoke.py
"""

import re
import subprocess
import sys
import time


def fail(message):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        if not match:
            fail(f"no banner, got {banner!r}")
        host, port = match.group(1), int(match.group(2))
        print(f"server up at {host}:{port}")

        import repro.client
        with repro.client.connect(host, port) as conn:
            conn.execute(
                "CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            conn.execute("CREATE STREAM agg AS SELECT sum(v) total, "
                         "cq_close(*) FROM s <VISIBLE '10 seconds'>")
            sub = conn.subscribe("agg")

            accepted = conn.ingest(
                "s", [(i, float(i)) for i in range(1, 9)])
            if accepted != 8:
                fail(f"ingest accepted {accepted}, wanted 8")
            conn.advance(10.0)

            windows = sub.wait_windows(1, timeout=10.0)
            if windows[0].rows != [(36, 10.0)]:
                fail(f"wrong window rows: {windows[0].rows}")
            print(f"window ok: {windows[0].rows}")

            conn.shutdown_server()
            deadline = time.monotonic() + 10.0
            while conn.server_goodbye is None \
                    and time.monotonic() < deadline:
                sub.poll(timeout=0.2)
            if conn.server_goodbye is None:
                fail("no goodbye frame from graceful shutdown")
            print(f"goodbye: {conn.server_goodbye}")

        code = proc.wait(timeout=10)
        if code != 0:
            fail(f"server exited {code}")
        print("SMOKE OK")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
